//! The (Basic) Distinct-Count Sketch — §3 and §4 of the paper.

use std::collections::BTreeSet;

use dcs_hash::cast::{u32_from_usize, u64_from_usize, usize_from_u32, usize_from_u64};
use dcs_hash::mix::{fingerprint64, fingerprint64_fill};
use dcs_hash::{GeometricLevelHash, Hash64, MultiplyShiftHash, SeedSequence, TabulationHash};

use dcs_telemetry::{LevelGauges, TelemetrySnapshot};

use crate::config::{HashFamily, SketchConfig};
use crate::error::SketchError;
use crate::estimator::{
    frequencies_for_groups, group_frequencies, threshold_from_frequencies, top_k_from_frequencies,
    TopKEstimate,
};
use crate::level::LevelState;
use crate::signature::BucketState;
use crate::state::{LevelSlabs, SketchState};
use crate::telem::{Counter, Telem};
use crate::types::{Delta, FlowKey, FlowUpdate, GroupBy};

/// Updates per internal batch chunk: bounds the scratch buffers of
/// [`DistinctCountSketch::update_batch`] (and the tracking equivalent)
/// and keeps one chunk's routing tables comfortably inside L1/L2.
pub const BATCH_CHUNK: usize = 1024;

/// Batches shorter than this skip the routed (structure-of-arrays)
/// plan and run the per-update scalar path instead. Measured
/// crossover: the routed plan amortizes its scratch-buffer fills and
/// wide hashing loops over the batch, which needs a few dozen updates
/// before it beats the scalar path's zero setup cost. Both plans
/// produce bit-identical sketch state, so the cutoff is purely a
/// performance knob.
pub const BATCH_MIN_ROUTED: usize = 32;

/// Minimum table count at which the routed plan's apply pass groups
/// updates by level before touching the arenas. Below it the apply runs
/// in stream order: with `r = 2` at the paper's bucket count the hot
/// arenas are cache-resident, so the counting sort plus its
/// order-indirected loads cost more than the locality they buy, while
/// from `r = 3` up the grouped visit keeps one level's arena hot
/// instead of cycling all of them (measured on the bench host; see
/// DESIGN.md §13). Either order yields bit-identical state — counter
/// updates commute — so, like [`BATCH_MIN_ROUTED`], this is purely a
/// performance knob.
pub const LEVEL_GROUP_MIN_TABLES: usize = 3;

/// Reusable scratch for one routed batch: fixed-capacity
/// structure-of-arrays buffers filled by pass 1 (`route_chunk`) and
/// consumed by pass 2. All stripes live in **one** boxed slab sized
/// once at construction — it *cannot* reallocate across chunks, and
/// `update_batch` performs exactly one scratch allocation per call no
/// matter how many chunks the batch spans. (A single allocation also
/// keeps the batch plan's per-call allocator traffic identical to the
/// per-update plan's plus one block, which keeps glibc's placement
/// decisions — and therefore cache behavior — iteration-stable; an
/// earlier five-slab layout made sustained ingest loops flip between
/// fast and slow heap layouts.)
///
/// Slab layout, in `chunk_cap`-sized stripes of `u64`:
///
/// ```text
/// [ packed | fps | levels | order | buckets(table 0) | buckets(table 1) | … ]
/// ```
///
/// `buckets` is **table-major**: table `t`'s bucket for update `i`
/// lives at stripe `4 + t`, index `i`, so pass 1 writes each table's
/// stripe in one contiguous fill (one hash-family dispatch per table
/// per chunk, not per key).
#[derive(Debug)]
pub(crate) struct BatchScratch {
    chunk_cap: usize,
    slab: Box<[u64]>,
}

/// Stripe indices into the scratch slab.
const STRIPE_PACKED: usize = 0;
const STRIPE_FPS: usize = 1;
const STRIPE_LEVELS: usize = 2;
const STRIPE_ORDER: usize = 3;
const STRIPE_BUCKETS: usize = 4;

impl BatchScratch {
    /// Sizes scratch for batches of `len` updates (capped at
    /// [`BATCH_CHUNK`] — longer batches reuse the same buffers chunk by
    /// chunk) across `num_tables` second-level tables.
    pub(crate) fn new(len: usize, num_tables: usize) -> Self {
        let chunk_cap = len.clamp(1, BATCH_CHUNK);
        Self {
            chunk_cap,
            slab: vec![0u64; chunk_cap * (STRIPE_BUCKETS + num_tables)].into_boxed_slice(),
        }
    }

    /// One full stripe as a mutable slice.
    #[inline]
    fn stripe_mut(&mut self, stripe: usize) -> &mut [u64] {
        let start = stripe * self.chunk_cap;
        &mut self.slab[start..start + self.chunk_cap]
    }

    /// Two distinct stripes borrowed simultaneously (read, write).
    #[inline]
    fn stripe_pair_mut(&mut self, read: usize, write: usize) -> (&[u64], &mut [u64]) {
        debug_assert_ne!(read, write);
        if read < write {
            let (lo, hi) = self.slab.split_at_mut(write * self.chunk_cap);
            let r = &lo[read * self.chunk_cap..(read + 1) * self.chunk_cap];
            (r, &mut hi[..self.chunk_cap])
        } else {
            let (lo, hi) = self.slab.split_at_mut(read * self.chunk_cap);
            let w = &mut lo[write * self.chunk_cap..(write + 1) * self.chunk_cap];
            (&hi[..self.chunk_cap], w)
        }
    }

    /// Counting-sorts the first `n` routed updates by first-level
    /// bucket into the order stripe (stable: stream order within a
    /// level). Levels are capped at 64, so the histogram lives on the
    /// stack.
    fn group_by_level(&mut self, n: usize) {
        let mut starts = [0usize; 65];
        let (levels, order) = self.stripe_pair_mut(STRIPE_LEVELS, STRIPE_ORDER);
        for &level in &levels[..n] {
            starts[usize_from_u64(level) + 1] += 1;
        }
        for l in 0..64 {
            starts[l + 1] += starts[l];
        }
        for (i, &level) in levels[..n].iter().enumerate() {
            let l = usize_from_u64(level);
            order[starts[l]] = u64_from_usize(i);
            starts[l] += 1;
        }
    }

    /// The fixed per-chunk capacity (also the stride of the slab's
    /// stripes).
    pub(crate) fn chunk_cap(&self) -> usize {
        self.chunk_cap
    }

    /// The level-grouped apply order of the routed chunk's updates.
    #[inline]
    fn order(&self, k: usize) -> usize {
        usize_from_u64(self.slab[STRIPE_ORDER * self.chunk_cap + k])
    }

    /// The fingerprint of update `i` in the routed chunk.
    #[inline]
    pub(crate) fn fp(&self, i: usize) -> u64 {
        self.slab[STRIPE_FPS * self.chunk_cap + i]
    }

    /// The first-level bucket of update `i` in the routed chunk.
    #[inline]
    pub(crate) fn level(&self, i: usize) -> usize {
        usize_from_u64(self.slab[STRIPE_LEVELS * self.chunk_cap + i])
    }

    /// The second-level bucket of update `i` in table `table`.
    #[inline]
    pub(crate) fn bucket(&self, table: usize, i: usize) -> usize {
        usize_from_u64(self.slab[(STRIPE_BUCKETS + table) * self.chunk_cap + i])
    }
}

/// A distinct sample extracted from a sketch, with its inference level.
///
/// `keys` is a uniform sample (rate `2^-level`) over the *distinct*
/// source-destination pairs with positive net frequency; `level` is the
/// lowest first-level bucket included.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistinctSample {
    /// The sampled distinct pairs.
    pub keys: Vec<FlowKey>,
    /// The lowest first-level bucket index included; the sampling rate
    /// is `2^-level`.
    pub level: u32,
}

impl DistinctSample {
    /// The scale factor `2^level` that unbiases sample counts.
    pub fn scale(&self) -> u64 {
        1u64 << self.level
    }

    /// Estimates the distinct-count frequency of one `group` from this
    /// already-extracted sample — the reusable-handle form of
    /// [`DistinctCountSketch::estimate_group_frequency`]: extract the
    /// sample once with [`DistinctCountSketch::distinct_sample`], then
    /// answer any number of point queries without rescanning the
    /// sketch.
    pub fn group_frequency(&self, group_by: GroupBy, group: u32) -> u64 {
        let count = self
            .keys
            .iter()
            .filter(|k| group_by.group_of(**k) == group)
            .count();
        u64_from_usize(count) * self.scale()
    }
}

/// A second-level hash function of the configured [`HashFamily`].
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
enum TableHash {
    MultiplyShift(MultiplyShiftHash),
    Tabulation(Box<TabulationHash>),
}

impl TableHash {
    fn new(family: HashFamily, seed: u64) -> Self {
        match family {
            HashFamily::MultiplyShift => TableHash::MultiplyShift(MultiplyShiftHash::new(seed)),
            HashFamily::Tabulation => TableHash::Tabulation(Box::new(TabulationHash::new(seed))),
        }
    }
}

impl Hash64 for TableHash {
    #[inline]
    fn hash(&self, key: u64) -> u64 {
        match self {
            TableHash::MultiplyShift(h) => h.hash(key),
            TableHash::Tabulation(h) => h.hash(key),
        }
    }

    /// Batched fill that hoists the family dispatch: one `match` per
    /// *slice*, then the concrete family's monomorphized fill loop —
    /// the per-key enum branch the scalar path pays disappears from the
    /// routed batch plan entirely.
    #[inline]
    fn hash_to_range_fill(&self, keys: &[u64], range: usize, out: &mut [u64]) {
        match self {
            TableHash::MultiplyShift(h) => h.hash_to_range_fill(keys, range, out),
            TableHash::Tabulation(h) => h.hash_to_range_fill(keys, range, out),
        }
    }
}

/// The Basic Distinct-Count Sketch (Fig. 2).
///
/// A delete-resilient synopsis of a flow-update stream supporting
/// approximate top-k *distinct-source frequency* queries. Updates cost
/// `O(r · log m)` counter operations; queries ([`estimate_top_k`]) scan
/// the structure (`O(r · s · log² m)`) — use
/// [`TrackingDcs`](crate::tracking::TrackingDcs) when queries are
/// frequent.
///
/// # Well-formed streams
///
/// Singleton decoding is sound when the stream is *well-formed*: at every
/// prefix, each pair's net count is ≥ 0 (deletions never outnumber prior
/// insertions of the same pair). SYN/ACK flow-update streams have this
/// property by construction. On ill-formed streams the sketch stays
/// consistent (counters are exact), but decodes may misreport buckets
/// and estimates lose their guarantees.
///
/// [`estimate_top_k`]: DistinctCountSketch::estimate_top_k
///
/// # Examples
///
/// ```
/// use dcs_core::{DestAddr, DistinctCountSketch, SketchConfig, SourceAddr};
///
/// let mut sketch = DistinctCountSketch::new(SketchConfig::paper_default());
/// for s in 0..100u32 {
///     sketch.insert(SourceAddr(s), DestAddr(7));
/// }
/// let top = sketch.estimate_top_k(1, 0.25);
/// assert_eq!(top.entries[0].group, 7);
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DistinctCountSketch {
    config: SketchConfig,
    level_hash: GeometricLevelHash,
    table_hashes: Vec<TableHash>,
    levels: Vec<Option<LevelState>>,
    updates_processed: u64,
    net_updates: i64,
    /// Telemetry recorder — a ZST no-op unless the `telemetry` feature
    /// is enabled. Not part of the synopsis state, so it is skipped by
    /// serialization and ignored by equality-style comparisons.
    #[cfg_attr(feature = "serde", serde(skip, default))]
    pub(crate) telem: Telem,
}

impl DistinctCountSketch {
    /// Creates an empty sketch with the given configuration.
    pub fn new(config: SketchConfig) -> Self {
        let mut seeds = SeedSequence::new(config.seed());
        let level_hash = GeometricLevelHash::new(seeds.next_seed(), config.max_levels());
        let table_hashes = (0..config.num_tables())
            .map(|_| TableHash::new(config.hash_family(), seeds.next_seed()))
            .collect();
        let levels = vec![None; usize_from_u32(config.max_levels())];
        Self {
            config,
            level_hash,
            table_hashes,
            levels,
            updates_processed: 0,
            net_updates: 0,
            telem: Telem::new(),
        }
    }

    /// Creates a sketch with the paper's default configuration.
    pub fn with_default_config() -> Self {
        Self::new(SketchConfig::paper_default())
    }

    /// The sketch's configuration.
    pub fn config(&self) -> &SketchConfig {
        &self.config
    }

    /// Total number of updates (inserts + deletes) processed.
    pub fn updates_processed(&self) -> u64 {
        self.updates_processed
    }

    /// Net sum of update signs (inserts minus deletes).
    pub fn net_updates(&self) -> i64 {
        self.net_updates
    }

    /// The first-level bucket a key maps to.
    #[inline]
    pub fn level_of(&self, key: FlowKey) -> u32 {
        self.level_hash.level(key.packed())
    }

    /// The second-level bucket a key maps to in table `table`.
    #[inline]
    pub fn bucket_of(&self, table: usize, key: FlowKey) -> usize {
        self.table_hashes[table].hash_to_range(key.packed(), self.config.buckets_per_table())
    }

    /// Processes one flow update — the basic maintenance algorithm of §3:
    /// for each of the `r` second-level tables at level `h(u,v)`, apply
    /// the update to the count signature at `g_j(u,v)`.
    #[inline]
    pub fn update(&mut self, update: FlowUpdate) {
        let timer = self.telem.start_timer();
        self.apply_update(update);
        self.telem.record_update(timer);
    }

    /// The telemetry-free scalar core shared by [`update`](Self::update)
    /// and the short-batch plan of [`update_batch`](Self::update_batch):
    /// hash, materialize the level, apply to all `r` tables, bump the
    /// stream counters. Exactly one code path mutates counters per
    /// update, so the two entry points cannot drift and the recorders
    /// around them cannot double-count.
    #[inline]
    fn apply_update(&mut self, update: FlowUpdate) {
        let level = usize_from_u32(self.level_of(update.key));
        let buckets = self.config.buckets_per_table();
        let num_tables = self.config.num_tables();
        let fp = fingerprint64(update.key.packed());
        let state = self.levels[level].get_or_insert_with(|| LevelState::new(num_tables, buckets));
        for (table, hash) in self.table_hashes.iter().enumerate() {
            let bucket = hash.hash_to_range(update.key.packed(), buckets);
            state.apply_with_fp(table, bucket, update.key, update.delta, fp);
        }
        self.updates_processed += 1;
        self.net_updates += update.delta.signum();
    }

    /// Convenience: processes a `+1` update for `(source, dest)`.
    pub fn insert(&mut self, source: crate::types::SourceAddr, dest: crate::types::DestAddr) {
        self.update(FlowUpdate::insert(source, dest));
    }

    /// Convenience: processes a `-1` update for `(source, dest)`.
    pub fn delete(&mut self, source: crate::types::SourceAddr, dest: crate::types::DestAddr) {
        self.update(FlowUpdate::delete(source, dest));
    }

    /// Processes a batch of updates — equivalent to calling
    /// [`update`](Self::update) for each element in order (bit-identical
    /// final counters), but faster on large batches. This is the single
    /// public batch entry point: it measures nothing at call time but
    /// auto-selects between two pre-measured plans.
    ///
    /// * Batches shorter than [`BATCH_MIN_ROUTED`] run the scalar
    ///   per-update core directly — the routed plan's scratch fills
    ///   cannot amortize over a handful of updates.
    /// * Longer batches run the routed plan in [`BATCH_CHUNK`]-sized
    ///   chunks: pass 1 (`route_chunk`) bulk-hashes every key exactly
    ///   once into structure-of-arrays scratch — levels, fingerprints,
    ///   and all `r` second-level buckets as contiguous fills — and
    ///   pass 2 applies the updates against the flat level arenas. With
    ///   `r ≥` [`LEVEL_GROUP_MIN_TABLES`] tables pass 2 visits updates
    ///   grouped by level (sound because counter updates commute);
    ///   below it, in stream order with no permutation — at small `r`
    ///   the hot arenas are cache-resident and the grouping passes cost
    ///   more than the locality they buy (measured; see DESIGN.md §13).
    ///
    /// Telemetry: one amortized-latency sample per update and exactly
    /// one batch-size observation per call, regardless of which plan
    /// runs.
    pub fn update_batch(&mut self, updates: &[FlowUpdate]) {
        if updates.is_empty() {
            return;
        }
        let timer = self.telem.start_timer();
        if updates.len() < BATCH_MIN_ROUTED {
            for &update in updates {
                self.apply_update(update);
            }
        } else {
            let mut scratch = BatchScratch::new(updates.len(), self.config.num_tables());
            for chunk in updates.chunks(BATCH_CHUNK) {
                self.update_chunk(chunk, &mut scratch);
            }
        }
        self.telem.record_update_batch(timer, updates.len());
        self.telem.record_batch(u64_from_usize(updates.len()));
    }

    /// One [`BATCH_CHUNK`]-bounded chunk of the routed batch plan
    /// (`scratch` is allocated once per [`update_batch`] call and
    /// reused across chunks).
    ///
    /// [`update_batch`]: Self::update_batch
    fn update_chunk(&mut self, chunk: &[FlowUpdate], scratch: &mut BatchScratch) {
        self.route_chunk(chunk, scratch);
        let num_tables = self.config.num_tables();
        let mut net = 0i64;
        if num_tables >= LEVEL_GROUP_MIN_TABLES {
            // Level-grouped apply: every counter mutation is a
            // commutative wrapping add, so the final state is
            // independent of apply order — and visiting one level's
            // arena to exhaustion keeps the working set at one arena
            // (~r·s·544 B) instead of every hot level at once, which is
            // the difference between L2 and L3 residency at large `r`
            // (DESIGN.md §13).
            scratch.group_by_level(chunk.len());
            for k in 0..chunk.len() {
                let i = scratch.order(k);
                let update = chunk[i];
                if let Some(state) = self.levels[scratch.level(i)].as_mut() {
                    let fp = scratch.fp(i);
                    for table in 0..num_tables {
                        state.apply_with_fp(
                            table,
                            scratch.bucket(table, i),
                            update.key,
                            update.delta,
                            fp,
                        );
                    }
                }
                net += update.delta.signum();
            }
        } else {
            // Stream-order apply: at small `r` the hot arenas already
            // fit in cache, so the batch plan's edge over the scalar
            // loop is the vectorized hash fills alone — the grouping
            // sort and its order indirection would give that edge back
            // (measured; DESIGN.md §13).
            for (i, &update) in chunk.iter().enumerate() {
                if let Some(state) = self.levels[scratch.level(i)].as_mut() {
                    let fp = scratch.fp(i);
                    for table in 0..num_tables {
                        state.apply_with_fp(
                            table,
                            scratch.bucket(table, i),
                            update.key,
                            update.delta,
                            fp,
                        );
                    }
                }
                net += update.delta.signum();
            }
        }
        self.updates_processed += u64_from_usize(chunk.len());
        self.net_updates += net;
    }

    /// Pass 1 of a batch chunk: bulk-hashes every key exactly once into
    /// the structure-of-arrays `scratch` — packed keys, first-level
    /// buckets, fingerprints, and each table's second-level buckets as
    /// four contiguous fill loops — and materializes every touched
    /// level, so pass 2 only ever sees allocated arenas. Each fill is a
    /// tight slice loop over one hash family (the enum dispatch is
    /// hoisted to once per table per chunk), which is what lets the
    /// mixing arithmetic unroll and vectorize across keys. Shared with
    /// the tracking layer's batch path.
    pub(crate) fn route_chunk(&mut self, chunk: &[FlowUpdate], scratch: &mut BatchScratch) {
        let n = chunk.len();
        debug_assert!(n <= scratch.chunk_cap());
        let num_buckets = self.config.buckets_per_table();
        for (slot, update) in scratch.stripe_mut(STRIPE_PACKED)[..n].iter_mut().zip(chunk) {
            *slot = update.key.packed();
        }
        {
            let (packed, levels) = scratch.stripe_pair_mut(STRIPE_PACKED, STRIPE_LEVELS);
            self.level_hash.levels_fill(&packed[..n], &mut levels[..n]);
        }
        {
            let (packed, fps) = scratch.stripe_pair_mut(STRIPE_PACKED, STRIPE_FPS);
            fingerprint64_fill(&packed[..n], &mut fps[..n]);
        }
        for (table, hash) in self.table_hashes.iter().enumerate() {
            let (packed, buckets) = scratch.stripe_pair_mut(STRIPE_PACKED, STRIPE_BUCKETS + table);
            hash.hash_to_range_fill(&packed[..n], num_buckets, &mut buckets[..n]);
        }
        // Levels are capped at 64, so a u64 bitmask tracks which ones
        // this chunk touches.
        let mut touched = 0u64;
        for i in 0..n {
            touched |= 1u64 << scratch.level(i);
        }
        while touched != 0 {
            let level = usize_from_u32(touched.trailing_zeros());
            self.level_mut(level);
            touched &= touched - 1;
        }
    }

    /// Processes a stream of updates, chunking it through
    /// [`update_batch`](Self::update_batch) so iterator callers get the
    /// batched fast path for free.
    pub fn extend<I: IntoIterator<Item = FlowUpdate>>(&mut self, updates: I) {
        let mut buf: Vec<FlowUpdate> = Vec::with_capacity(BATCH_CHUNK);
        for u in updates {
            buf.push(u);
            if buf.len() == BATCH_CHUNK {
                self.update_batch(&buf);
                buf.clear();
            }
        }
        if !buf.is_empty() {
            self.update_batch(&buf);
        }
    }

    /// Decodes the bucket `(level, table, bucket)` without allocating,
    /// via the screened `O(1)` fast path.
    pub(crate) fn decode_bucket(&self, level: usize, table: usize, bucket: usize) -> BucketState {
        match &self.levels[level] {
            Some(state) => state.decode_fast(table, bucket),
            None => BucketState::Empty,
        }
    }

    /// Decodes the bucket `(level, table, bucket)` with the unscreened
    /// 65-counter scan — the reference path for equivalence tests,
    /// benchmarks, and invariant cross-checks.
    pub(crate) fn decode_bucket_exhaustive(
        &self,
        level: usize,
        table: usize,
        bucket: usize,
    ) -> BucketState {
        match &self.levels[level] {
            Some(state) => state.decode(table, bucket),
            None => BucketState::Empty,
        }
    }

    /// Applies `(key, delta)` to the bucket `(level, table, bucket)`,
    /// screening for decode transitions: returns `None` when the `O(1)`
    /// screen proves the update cannot change the bucket's decoded
    /// singleton set (on a well-formed stream), and `Some((before,
    /// after))` — the decoded states around the application — when it
    /// cannot rule a transition out.
    ///
    /// The screen proves no-transition when both the current and
    /// post-update screen classes are non-candidates (the bucket is and
    /// stays empty/colliding), or both are candidates for the *same*
    /// key (a singleton absorbing a repeat of its own key). Any real
    /// transition — singleton appearing, vanishing, or changing key —
    /// forces the two classes to differ. On the `Some` path the decodes
    /// reuse the two classes already computed, so no bucket is ever
    /// classified twice.
    pub(crate) fn screened_apply(
        &mut self,
        level: usize,
        table: usize,
        bucket: usize,
        key: FlowKey,
        delta: Delta,
        fp: u64,
    ) -> Option<(BucketState, BucketState)> {
        use crate::signature::ScreenClass::{Candidate, Empty, Fail};
        let state = self.level_mut(level);
        let sig = state.sig_ref(table, bucket);
        // Dominant case first: a repeated packet on a flow that owns
        // its bucket. Proves `(Candidate(key), Candidate(key))` with
        // sixteen counter reads and no inverse or fingerprint mixing.
        if sig.skips_as_own_singleton(key, delta, fp) {
            state.apply_with_fp(table, bucket, key, delta, fp);
            self.telem.incr(Counter::ScreenFastSkip);
            return None;
        }
        let sig = state.sig_ref(table, bucket);
        let class_before = sig.screen_class();
        let class_after = sig.screen_class_after(key, delta, fp);
        let no_transition = match (class_before, class_after) {
            (Fail | Empty, Fail | Empty) => true,
            (Candidate(a), Candidate(b)) => a == b,
            _ => false,
        };
        if no_transition {
            state.apply_with_fp(table, bucket, key, delta, fp);
            self.telem.incr(Counter::ScreenNoTransition);
            return None;
        }
        let before = sig.decode_class(class_before);
        state.apply_with_fp(table, bucket, key, delta, fp);
        // `class_after` predicted the post-update sums and counters
        // exactly, so materializing it against the updated signature
        // equals a fresh `decode_fast`.
        let after = state.sig_ref(table, bucket).decode_class(class_after);
        self.telem.incr(Counter::ScreenMiss);
        for decoded in [&before, &after] {
            if matches!(decoded, BucketState::Singleton { .. }) {
                self.telem.incr(Counter::DecodeSingleton);
            } else {
                self.telem.incr(Counter::DecodeNonSingleton);
            }
        }
        Some((before, after))
    }

    /// Applies an update to a single `(level, table, bucket)` cell —
    /// used by the tracking layer, which interleaves decodes between
    /// per-table applications. `fp` is the key's precomputed
    /// [`fingerprint64`].
    pub(crate) fn apply_at(
        &mut self,
        level: usize,
        table: usize,
        bucket: usize,
        key: FlowKey,
        delta: Delta,
        fp: u64,
    ) {
        self.level_mut(level)
            .apply_with_fp(table, bucket, key, delta, fp);
    }

    pub(crate) fn note_update(&mut self, delta: Delta) {
        self.updates_processed += 1;
        self.net_updates += delta.signum();
    }

    fn level_mut(&mut self, level: usize) -> &mut LevelState {
        self.levels[level].get_or_insert_with(|| {
            LevelState::new(self.config.num_tables(), self.config.buckets_per_table())
        })
    }

    /// The distinct pairs decodable at one first-level bucket, sorted
    /// ascending — the shared scan under [`distinct_sample`] and
    /// [`singletons`](Self::singletons).
    ///
    /// Decoded keys are cross-checked against the first-level hash
    /// (`level_of(key) == level`), which is a no-op on well-formed
    /// streams and discards phantom decodes on ill-formed ones. The
    /// cross-check also means distinct levels can never yield the same
    /// key, so callers may concatenate levels without deduplicating.
    ///
    /// [`distinct_sample`]: Self::distinct_sample
    fn level_singletons(&self, level: u32) -> Vec<FlowKey> {
        self.level_singletons_impl(level, true)
    }

    fn level_singletons_impl(&self, level: u32, wide: bool) -> Vec<FlowKey> {
        let mut keys = BTreeSet::new();
        if let Some(state) = &self.levels[usize_from_u32(level)] {
            if wide {
                state.collect_singletons(&mut keys);
            } else {
                state.collect_singletons_scalar(&mut keys);
            }
        }
        // BTreeSet iteration is already ascending, so the collected
        // vector needs no further sort.
        keys.into_iter()
            .filter(|k| self.level_of(*k) == level)
            .collect()
    }

    /// Extracts the distinct sample for an estimation target of
    /// `(1+ε)·s/16` pairs — the sampling loop of `BaseTopk`
    /// (Fig. 3, steps 1–6).
    pub fn distinct_sample(&self, epsilon: f64) -> DistinctSample {
        let target = self.config.target_sample_size(epsilon);
        let mut keys: Vec<FlowKey> = Vec::new();
        let mut lowest = 0u32;
        for level in (0..self.config.max_levels()).rev() {
            keys.extend(self.level_singletons(level));
            if keys.len() >= target {
                lowest = level;
                break;
            }
        }
        keys.sort_unstable();
        DistinctSample {
            keys,
            level: lowest,
        }
    }

    /// `BaseTopk` (Fig. 3): estimates the top-`k` groups and their
    /// distinct-count frequencies.
    ///
    /// `epsilon` is the relative-accuracy parameter; it sets the target
    /// sample size `(1+ε)·s/16`. The returned estimate exposes the
    /// inference level and sample size alongside the entries.
    pub fn estimate_top_k(&self, k: usize, epsilon: f64) -> TopKEstimate {
        let timer = self.telem.start_timer();
        let sample = self.distinct_sample(epsilon);
        let freqs = group_frequencies(&sample.keys, self.config.group_by());
        let estimate = top_k_from_frequencies(
            &freqs,
            k,
            self.config.group_by(),
            sample.level,
            sample.keys.len(),
        );
        self.telem.record_query(timer);
        estimate
    }

    /// Footnote-3 variant: estimates all groups with frequency ≥ `tau`.
    pub fn estimate_threshold(&self, tau: u64, epsilon: f64) -> TopKEstimate {
        let sample = self.distinct_sample(epsilon);
        let freqs = group_frequencies(&sample.keys, self.config.group_by());
        threshold_from_frequencies(
            &freqs,
            tau,
            self.config.group_by(),
            sample.level,
            sample.keys.len(),
        )
    }

    /// Estimates the total number `U` of distinct pairs with positive
    /// net frequency (Flajolet–Martin style: sample size × scale).
    pub fn estimate_distinct_pairs(&self, epsilon: f64) -> u64 {
        let sample = self.distinct_sample(epsilon);
        u64_from_usize(sample.keys.len()) * sample.scale()
    }

    /// Whether two sketches share configuration and hash functions and
    /// can therefore be merged.
    pub fn is_compatible(&self, other: &Self) -> bool {
        self.config == other.config
    }

    /// Merges another sketch built over a disjoint (or overlapping —
    /// counters are linear) stream into this one, bucket-wise.
    ///
    /// This is how a central DDoS monitor combines synopses computed at
    /// several edge routers.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::IncompatibleMerge`] if the configurations
    /// (including seeds) differ.
    pub fn merge_from(&mut self, other: &Self) -> Result<(), SketchError> {
        self.merge_from_impl(other, true)
    }

    /// Scalar reference twin of [`merge_from`](Self::merge_from):
    /// identical except the per-level slab passes run the retained
    /// scalar kernels. Kept for the equivalence suite
    /// (`tests/read_equivalence.rs`).
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::IncompatibleMerge`] exactly as
    /// [`merge_from`](Self::merge_from) does.
    #[doc(hidden)]
    pub fn merge_from_reference(&mut self, other: &Self) -> Result<(), SketchError> {
        self.merge_from_impl(other, false)
    }

    fn merge_from_impl(&mut self, other: &Self, wide: bool) -> Result<(), SketchError> {
        if !self.is_compatible(other) {
            return Err(SketchError::IncompatibleMerge {
                reason: format!("configs differ: {:?} vs {:?}", self.config, other.config),
            });
        }
        for (mine, theirs) in self.levels.iter_mut().zip(&other.levels) {
            match (mine.as_mut(), theirs) {
                (Some(a), Some(b)) => {
                    if wide {
                        a.merge_from(b);
                    } else {
                        a.merge_from_scalar(b);
                    }
                }
                (None, Some(b)) => *mine = Some(b.clone()),
                _ => {}
            }
        }
        self.updates_processed += other.updates_processed;
        self.net_updates += other.net_updates;
        self.telem.merge_from(&other.telem);
        Ok(())
    }

    /// Merges an ordered sequence of shard sketches into one, starting
    /// from a clone of the first — the read-side linear merge used by
    /// sharded ingest to materialize a consistent snapshot from
    /// per-worker partials. Merge order is the iteration order, so
    /// callers that iterate shards by index get a deterministic
    /// (bit-identical across calls) result.
    ///
    /// Returns an empty sketch built from `config` when the iterator is
    /// empty.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::IncompatibleMerge`] if any two parts
    /// disagree on configuration (shards created from one config never
    /// do).
    pub fn merge_many<'a, I>(config: &SketchConfig, parts: I) -> Result<Self, SketchError>
    where
        I: IntoIterator<Item = &'a Self>,
    {
        let mut iter = parts.into_iter();
        let Some(first) = iter.next() else {
            return Ok(Self::new(config.clone()));
        };
        let mut merged = first.clone();
        for part in iter {
            merged.merge_from(part)?;
        }
        Ok(merged)
    }

    /// Subtracts an earlier snapshot of the same sketch, yielding a
    /// sketch of exactly the updates that arrived *after* the snapshot.
    ///
    /// Counters are linear, so if `snapshot` was cloned from this
    /// sketch at time `t₁` and this sketch has since processed more
    /// updates, the difference equals a sketch built over only the
    /// `(t₁, now]` updates. This is the building block for epoch-based
    /// surge detection (see `dcs-netsim`'s epoch manager): compare the
    /// *recent* distinct-source activity against baseline profiles
    /// without keeping per-interval sketches.
    ///
    /// The resulting sketch is well-formed whenever the suffix stream
    /// itself is (e.g., for insert-only suffixes, always).
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::IncompatibleMerge`] if the configurations
    /// (including seeds) differ, and [`SketchError::SnapshotAhead`] if
    /// `snapshot` has processed *more* updates than this sketch — it
    /// then cannot be an earlier state, and the subtraction would
    /// produce a window of garbage. (An earlier revision clamped the
    /// window's update count to zero with `saturating_sub` and returned
    /// the garbage silently.)
    ///
    /// # Examples
    ///
    /// ```
    /// use dcs_core::{DestAddr, DistinctCountSketch, SketchConfig, SourceAddr};
    ///
    /// let mut sketch = DistinctCountSketch::new(SketchConfig::paper_default());
    /// sketch.insert(SourceAddr(1), DestAddr(9));
    /// let snapshot = sketch.clone();
    /// sketch.insert(SourceAddr(2), DestAddr(9));
    /// let recent = sketch.difference(&snapshot)?;
    /// assert_eq!(recent.estimate_distinct_pairs(0.25), 1); // only the new pair
    /// // The other direction is an error, not an empty window:
    /// assert!(snapshot.difference(&sketch).is_err());
    /// # Ok::<(), dcs_core::SketchError>(())
    /// ```
    pub fn difference(&self, snapshot: &Self) -> Result<Self, SketchError> {
        self.difference_impl(snapshot, true)
    }

    /// Scalar reference twin of [`difference`](Self::difference):
    /// identical except the per-level subtract passes (and the
    /// all-zero check on snapshot-only levels) run the retained scalar
    /// paths. Kept for the equivalence suite.
    ///
    /// # Errors
    ///
    /// Returns the same errors as [`difference`](Self::difference).
    #[doc(hidden)]
    pub fn difference_reference(&self, snapshot: &Self) -> Result<Self, SketchError> {
        self.difference_impl(snapshot, false)
    }

    fn difference_impl(&self, snapshot: &Self, wide: bool) -> Result<Self, SketchError> {
        if !self.is_compatible(snapshot) {
            return Err(SketchError::IncompatibleMerge {
                reason: format!("configs differ: {:?} vs {:?}", self.config, snapshot.config),
            });
        }
        if snapshot.updates_processed > self.updates_processed {
            self.telem.incr(Counter::SnapshotAheadRejected);
            return Err(SketchError::SnapshotAhead {
                snapshot_updates: snapshot.updates_processed,
                current_updates: self.updates_processed,
            });
        }
        let mut diff = self.clone();
        for (mine, theirs) in diff.levels.iter_mut().zip(&snapshot.levels) {
            match (mine.as_mut(), theirs) {
                (Some(a), Some(b)) => {
                    if wide {
                        a.subtract(b);
                    } else {
                        a.subtract_scalar(b);
                    }
                }
                (None, Some(b))
                    // Level never touched here but present in the
                    // snapshot: only sound if the snapshot level is
                    // all-zero (anything else would go negative).
                    if !(if wide { b.is_zero() } else { b.is_zero_scalar() }) => {
                        let mut fresh =
                            LevelState::new(self.config.num_tables(), self.config.buckets_per_table());
                        if wide {
                            fresh.subtract(b);
                        } else {
                            fresh.subtract_scalar(b);
                        }
                        *mine = Some(fresh);
                    }
                _ => {}
            }
        }
        // Safe plain subtraction: the snapshot-ahead guard above already
        // rejected `snapshot.updates_processed > self.updates_processed`.
        diff.updates_processed = self.updates_processed - snapshot.updates_processed;
        diff.net_updates = self.net_updates - snapshot.net_updates;
        Ok(diff)
    }

    /// Estimates the distinct-count frequency of a single `group` from
    /// the current distinct sample (a point query over the same sample
    /// the top-k estimate uses).
    ///
    /// For several point queries against the same sketch state, use
    /// [`estimate_group_frequencies`](Self::estimate_group_frequencies)
    /// (or hold a [`distinct_sample`](Self::distinct_sample) and query
    /// it via [`DistinctSample::group_frequency`]) — this method
    /// re-extracts the sample, a full `levels · r · s` scan, on every
    /// call.
    pub fn estimate_group_frequency(&self, group: u32, epsilon: f64) -> u64 {
        self.distinct_sample(epsilon)
            .group_frequency(self.config.group_by(), group)
    }

    /// Batched point query: estimates the distinct-count frequency of
    /// every group in `groups` from **one** distinct sample, returning
    /// the estimates in the same order. One sketch scan plus one
    /// aggregation pass regardless of `groups.len()`, against one scan
    /// *per group* for repeated
    /// [`estimate_group_frequency`](Self::estimate_group_frequency)
    /// calls; the estimates are identical because both read the same
    /// sample.
    pub fn estimate_group_frequencies(&self, groups: &[u32], epsilon: f64) -> Vec<u64> {
        let sample = self.distinct_sample(epsilon);
        let freqs = group_frequencies(&sample.keys, self.config.group_by());
        frequencies_for_groups(&freqs, groups, sample.scale())
    }

    /// Iterates over every currently-decodable singleton pair with its
    /// level — the raw material of the distinct sample, exposed for
    /// debugging and inspection. Shares the per-level scan (including
    /// the `level_of` cross-check) with [`distinct_sample`], so the two
    /// views can never disagree about what a level contains.
    ///
    /// Distinct pairs decodable in several tables of one level are
    /// yielded once. Order: descending level, ascending key.
    ///
    /// [`distinct_sample`]: Self::distinct_sample
    pub fn singletons(&self) -> Vec<(u32, FlowKey)> {
        let mut out = Vec::new();
        for level in (0..self.config.max_levels()).rev() {
            out.extend(self.level_singletons(level).into_iter().map(|k| (level, k)));
        }
        out
    }

    /// Scalar reference twin of [`singletons`](Self::singletons): the
    /// same enumeration through the retained per-bucket scan instead of
    /// the wide screen pass. Kept for the equivalence suite.
    #[doc(hidden)]
    pub fn singletons_reference(&self) -> Vec<(u32, FlowKey)> {
        let mut out = Vec::new();
        for level in (0..self.config.max_levels()).rev() {
            out.extend(
                self.level_singletons_impl(level, false)
                    .into_iter()
                    .map(|k| (level, k)),
            );
        }
        out
    }

    /// The `(occupied, singletons)` gauges of one first-level bucket
    /// (`None` when the level was never materialized) — the per-level
    /// unit under [`telemetry_snapshot`](Self::telemetry_snapshot),
    /// exposed so the equivalence suite can pin the wide occupancy mask
    /// against its scalar twin below.
    #[doc(hidden)]
    pub fn level_occupancy(&self, level: u32) -> Option<(u64, u64)> {
        self.levels[usize_from_u32(level)]
            .as_ref()
            .map(LevelState::occupancy)
    }

    /// Scalar reference twin of [`level_occupancy`](Self::level_occupancy).
    #[doc(hidden)]
    pub fn level_occupancy_reference(&self, level: u32) -> Option<(u64, u64)> {
        self.levels[usize_from_u32(level)]
            .as_ref()
            .map(LevelState::occupancy_scalar)
    }

    /// Number of currently allocated (touched) first-level buckets.
    pub fn allocated_levels(&self) -> usize {
        self.levels.iter().filter(|l| l.is_some()).count()
    }

    /// Heap bytes used by allocated counter storage.
    pub fn heap_bytes(&self) -> usize {
        self.levels
            .iter()
            .flatten()
            .map(LevelState::heap_bytes)
            .sum()
    }

    /// Read-only view of a level used by tests and the tracking layer.
    pub(crate) fn level_state(&self, level: usize) -> Option<&LevelState> {
        self.levels[level].as_ref()
    }

    /// Captures the complete persistent state of the sketch as plain
    /// data (see [`crate::state`]): the configuration, the update
    /// counters, and every materialized level's slabs — including
    /// levels that have returned to all-zero, so `to_state` equality is
    /// a true bit-identity check between two sketches.
    ///
    /// Hash functions are not captured; they re-derive from the
    /// configuration seed on restore.
    pub fn to_state(&self) -> SketchState {
        let mut levels = Vec::with_capacity(self.allocated_levels());
        for (index, state) in self.levels.iter().enumerate() {
            let Some(state) = state else { continue };
            levels.push(LevelSlabs {
                // Bounded by max_levels ≤ 64; the audited cast panics
                // on a logic error instead of mislabeling the level.
                level: u32_from_usize(index),
                counts: state.counts().to_vec(),
                key_sums: state.key_sums().to_vec(),
                fp_sums: state.fp_sums().to_vec(),
            });
        }
        SketchState {
            config: self.config.clone(),
            updates_processed: self.updates_processed,
            net_updates: self.net_updates,
            levels,
        }
    }

    /// Reconstructs a sketch from a captured [`SketchState`], validating
    /// every structural property before any level is installed.
    ///
    /// Restore + suffix replay is bit-identical to the uninterrupted
    /// run: counters are restored verbatim, hash functions re-derive
    /// deterministically from the configuration seed, and the basic
    /// sketch carries no other state.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::InvalidState`] if a level index is out of
    /// range or not strictly ascending, or a slab's length disagrees
    /// with the configuration's `(r, s)` dimensions.
    pub fn from_state(state: SketchState) -> Result<Self, SketchError> {
        let mut sketch = Self::new(state.config);
        let max_levels = sketch.config.max_levels();
        let mut prev: Option<u32> = None;
        for slab in state.levels {
            if slab.level >= max_levels {
                return Err(SketchError::InvalidState {
                    reason: format!(
                        "level {} out of range (max_levels {max_levels})",
                        slab.level
                    ),
                });
            }
            if let Some(p) = prev {
                if p >= slab.level {
                    return Err(SketchError::InvalidState {
                        reason: format!("levels not strictly ascending at level {}", slab.level),
                    });
                }
            }
            prev = Some(slab.level);
            let level = LevelState::from_parts(
                sketch.config.num_tables(),
                sketch.config.buckets_per_table(),
                slab.counts,
                slab.key_sums,
                slab.fp_sums,
            )
            .map_err(|reason| SketchError::InvalidState {
                reason: format!("level {}: {reason}", slab.level),
            })?;
            sketch.levels[usize_from_u32(slab.level)] = Some(level);
        }
        sketch.updates_processed = state.updates_processed;
        sketch.net_updates = state.net_updates;
        Ok(sketch)
    }

    /// Assembles a telemetry snapshot of the sketch: per-level bucket
    /// occupancy and decodable-singleton gauges, plus — when the
    /// `telemetry` feature is enabled — the hot-path event counters and
    /// update/query latency summaries. With the feature disabled the
    /// counters map is empty and latencies are `None` (the no-op
    /// recorder contributes nothing); the structural gauges are always
    /// read live from the counter arrays.
    ///
    /// This is a full scan of the allocated levels (`O(levels · r · s)`
    /// screened decodes), intended for periodic export, not the update
    /// path.
    pub fn telemetry_snapshot(&self, label: &str) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::new(label);
        snap.updates_processed = self.updates_processed;
        snap.net_updates = self.net_updates;
        for (index, state) in self.levels.iter().enumerate() {
            let Some(state) = state else { continue };
            let (occupied, singletons) = state.occupancy();
            let gauges = LevelGauges {
                level: u32_from_usize(index),
                occupied_buckets: occupied,
                decoded_singletons: singletons,
                tracked_singletons: 0,
                heap_len: 0,
            };
            if !gauges.is_empty() {
                snap.levels.push(gauges);
            }
        }
        self.telem.fill_snapshot(&mut snap);
        snap
    }
}

impl Default for DistinctCountSketch {
    fn default() -> Self {
        Self::with_default_config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{DestAddr, GroupBy, SourceAddr};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashMap;

    fn small_config(seed: u64) -> SketchConfig {
        SketchConfig::builder()
            .num_tables(3)
            .buckets_per_table(64)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn empty_sketch_returns_empty_estimates() {
        let sketch = DistinctCountSketch::with_default_config();
        let est = sketch.estimate_top_k(5, 0.25);
        assert!(est.entries.is_empty());
        assert_eq!(est.sample_size, 0);
        assert_eq!(sketch.estimate_distinct_pairs(0.25), 0);
        assert_eq!(sketch.allocated_levels(), 0);
        assert_eq!(sketch.heap_bytes(), 0);
    }

    #[test]
    fn small_stream_is_recovered_exactly() {
        // Fewer distinct pairs than the sample target: every pair is
        // recovered, the inference level is 0, and estimates are exact.
        let mut sketch = DistinctCountSketch::new(small_config(1));
        for s in 0..5u32 {
            sketch.insert(SourceAddr(s), DestAddr(100));
        }
        for s in 0..3u32 {
            sketch.insert(SourceAddr(s), DestAddr(200));
        }
        let est = sketch.estimate_top_k(2, 0.25);
        assert_eq!(est.sample_level, 0);
        assert_eq!(est.scale, 1);
        assert_eq!(est.groups(), vec![100, 200]);
        assert_eq!(est.frequency_of(100), Some(5));
        assert_eq!(est.frequency_of(200), Some(3));
    }

    #[test]
    fn deletes_cancel_inserts_exactly() {
        let mut with_noise = DistinctCountSketch::new(small_config(2));
        let mut clean = DistinctCountSketch::new(small_config(2));
        // Persistent flows in both.
        for s in 0..10u32 {
            with_noise.insert(SourceAddr(s), DestAddr(1));
            clean.insert(SourceAddr(s), DestAddr(1));
        }
        // Transient flows only in `with_noise`, later deleted.
        for s in 100..200u32 {
            with_noise.insert(SourceAddr(s), DestAddr(2));
        }
        for s in 100..200u32 {
            with_noise.delete(SourceAddr(s), DestAddr(2));
        }
        // The synopsis must be bit-identical to one that never saw the
        // deleted flows ("impervious to delete operations", §3), modulo
        // levels that were touched and fully reverted (allocated but
        // all-zero).
        for level in 0..64usize {
            match (with_noise.level_state(level), clean.level_state(level)) {
                (Some(a), Some(b)) => assert_eq!(a, b, "level {level} diverged"),
                (Some(a), None) => assert!(a.is_zero(), "level {level} has residue"),
                (None, Some(b)) => assert!(b.is_zero(), "level {level} missing"),
                (None, None) => {}
            }
        }
        let est = with_noise.estimate_top_k(2, 0.25);
        assert_eq!(est.groups(), vec![1]);
        assert_eq!(est.frequency_of(1), Some(10));
    }

    #[test]
    fn duplicate_inserts_count_once_for_distinct_frequency() {
        let mut sketch = DistinctCountSketch::new(small_config(3));
        for _ in 0..50 {
            sketch.insert(SourceAddr(7), DestAddr(9));
        }
        let est = sketch.estimate_top_k(1, 0.25);
        // 50 inserts of the same pair are one distinct source.
        assert_eq!(est.frequency_of(9), Some(1));
    }

    #[test]
    fn update_counters_track_stream() {
        let mut sketch = DistinctCountSketch::new(small_config(4));
        sketch.insert(SourceAddr(1), DestAddr(2));
        sketch.insert(SourceAddr(2), DestAddr(2));
        sketch.delete(SourceAddr(1), DestAddr(2));
        assert_eq!(sketch.updates_processed(), 3);
        assert_eq!(sketch.net_updates(), 1);
    }

    #[test]
    fn extend_processes_all() {
        let mut sketch = DistinctCountSketch::new(small_config(5));
        let ups: Vec<FlowUpdate> = (0..10)
            .map(|s| FlowUpdate::insert(SourceAddr(s), DestAddr(1)))
            .collect();
        sketch.extend(ups);
        assert_eq!(sketch.updates_processed(), 10);
    }

    #[test]
    fn estimates_on_larger_stream_are_accurate() {
        // 5 heavy destinations (300 distinct sources each) plus 500
        // singleton flows. With s = 2048 the stopping rule targets a
        // ~160-element distinct sample, putting ~24 occurrences of each
        // heavy destination in the sample — enough for ~20% relative
        // error; we assert a generous 50%.
        let config = SketchConfig::builder()
            .buckets_per_table(2048)
            .seed(6)
            .build()
            .unwrap();
        let mut sketch = DistinctCountSketch::new(config);
        let mut exact: HashMap<u32, u64> = HashMap::new();
        let mut rng = StdRng::seed_from_u64(42);
        for dest in 0..5u32 {
            for _ in 0..300 {
                sketch.insert(SourceAddr(rng.gen()), DestAddr(dest));
                *exact.entry(dest).or_insert(0) += 1;
            }
        }
        for i in 0..500u32 {
            sketch.insert(SourceAddr(rng.gen()), DestAddr(1000 + i));
        }
        let est = sketch.estimate_top_k(5, 0.25);
        assert_eq!(est.entries.len(), 5);
        for entry in &est.entries {
            let truth = exact[&entry.group] as f64;
            let got = entry.estimated_frequency as f64;
            let rel = (got - truth).abs() / truth;
            assert!(
                rel < 0.5,
                "group {}: est {} vs exact {} (rel {rel:.2})",
                entry.group,
                got,
                truth
            );
        }
    }

    #[test]
    fn distinct_pair_estimate_tracks_u() {
        let mut sketch = DistinctCountSketch::new(small_config(7));
        let u = 5000u32;
        for i in 0..u {
            sketch.insert(SourceAddr(i), DestAddr(i % 50));
        }
        let est = sketch.estimate_distinct_pairs(0.25) as f64;
        let rel = (est - f64::from(u)).abs() / f64::from(u);
        assert!(rel < 0.5, "estimated U = {est}, true = {u}");
    }

    #[test]
    fn merge_equals_single_sketch_over_union() {
        let mut a = DistinctCountSketch::new(small_config(8));
        let mut b = DistinctCountSketch::new(small_config(8));
        let mut combined = DistinctCountSketch::new(small_config(8));
        for s in 0..50u32 {
            a.insert(SourceAddr(s), DestAddr(1));
            combined.insert(SourceAddr(s), DestAddr(1));
        }
        for s in 50..80u32 {
            b.insert(SourceAddr(s), DestAddr(2));
            combined.insert(SourceAddr(s), DestAddr(2));
        }
        a.merge_from(&b).unwrap();
        assert_eq!(a.updates_processed(), combined.updates_processed());
        let merged_est = a.estimate_top_k(2, 0.25);
        let combined_est = combined.estimate_top_k(2, 0.25);
        assert_eq!(merged_est, combined_est);
    }

    #[test]
    fn merge_rejects_different_seeds() {
        let mut a = DistinctCountSketch::new(small_config(1));
        let b = DistinctCountSketch::new(small_config(2));
        let err = a.merge_from(&b).unwrap_err();
        assert!(matches!(err, SketchError::IncompatibleMerge { .. }));
    }

    #[test]
    fn source_orientation_counts_distinct_destinations() {
        let config = SketchConfig::builder()
            .buckets_per_table(64)
            .group_by(GroupBy::Source)
            .seed(9)
            .build()
            .unwrap();
        let mut sketch = DistinctCountSketch::new(config);
        // Source 5 scans 40 destinations; source 6 contacts 2.
        for d in 0..40u32 {
            sketch.insert(SourceAddr(5), DestAddr(d));
        }
        for d in 0..2u32 {
            sketch.insert(SourceAddr(6), DestAddr(d));
        }
        let est = sketch.estimate_top_k(1, 0.25);
        assert_eq!(est.entries[0].group, 5);
        assert_eq!(est.group_by, GroupBy::Source);
    }

    #[test]
    fn prefix_orientation_aggregates_subnet_spray() {
        // An attack spraying 64 hosts of one /24 with 8 sources each:
        // no host exceeds 8, but the prefix totals 512.
        let config = SketchConfig::builder()
            .buckets_per_table(1024)
            .group_by(GroupBy::DestinationPrefix { bits: 24 })
            .seed(31)
            .build()
            .unwrap();
        let mut sketch = DistinctCountSketch::new(config);
        let prefix = 0x0a00_1200u32;
        for host in 0..64u32 {
            for s in 0..8u32 {
                sketch.insert(SourceAddr(host * 100 + s), DestAddr(prefix + host));
            }
        }
        // Background: a single busy host elsewhere with 100 sources.
        for s in 0..100u32 {
            sketch.insert(SourceAddr(0x5000_0000 + s), DestAddr(0x0b00_0001));
        }
        let top = sketch.estimate_top_k(1, 0.25);
        assert_eq!(top.entries[0].group, prefix, "sprayed /24 must lead");
        let est = top.entries[0].estimated_frequency as f64;
        assert!((est - 512.0).abs() / 512.0 < 0.4, "estimate {est}");
    }

    #[test]
    fn threshold_query_filters() {
        let mut sketch = DistinctCountSketch::new(small_config(10));
        for s in 0..30u32 {
            sketch.insert(SourceAddr(s), DestAddr(1));
        }
        for s in 0..3u32 {
            sketch.insert(SourceAddr(s), DestAddr(2));
        }
        let est = sketch.estimate_threshold(10, 0.25);
        assert_eq!(est.groups(), vec![1]);
    }

    #[test]
    fn allocated_levels_stay_logarithmic() {
        let mut sketch = DistinctCountSketch::new(small_config(11));
        for i in 0..10_000u32 {
            sketch.insert(SourceAddr(i), DestAddr(i % 10));
        }
        // 10^4 pairs ≈ 2^13.3: expect ≈14 non-empty levels, certainly
        // far fewer than 64.
        let allocated = sketch.allocated_levels();
        assert!(
            (10..=20).contains(&allocated),
            "allocated levels = {allocated}"
        );
    }

    #[test]
    fn scale_factor_is_inclusion_probability_inverse() {
        // Regression for the pseudocode off-by-one (module docs of
        // `estimator`): with enough pairs to push the inference level
        // above 0, the scaled estimate must track the true frequency —
        // under the paper's literal `2^(B-1)` scaling it would sit near
        // half the truth.
        let mut sketch = DistinctCountSketch::new(small_config(12));
        let truth = 4000u32;
        for s in 0..truth {
            sketch.insert(SourceAddr(s), DestAddr(77));
        }
        let est = sketch.estimate_top_k(1, 0.25);
        assert!(est.sample_level > 0, "level = {}", est.sample_level);
        let got = est.frequency_of(77).unwrap() as f64;
        let rel = (got - f64::from(truth)).abs() / f64::from(truth);
        assert!(rel < 0.35, "estimate {got} vs truth {truth} (rel {rel:.2})");
    }

    #[test]
    fn difference_isolates_the_suffix_stream() {
        let mut sketch = DistinctCountSketch::new(small_config(20));
        for s in 0..50u32 {
            sketch.insert(SourceAddr(s), DestAddr(1));
        }
        let snapshot = sketch.clone();
        // 4 suffix pairs: strictly below the sample target, so the
        // difference resolves exactly at level 0.
        for s in 0..4u32 {
            sketch.insert(SourceAddr(1000 + s), DestAddr(2));
        }
        let recent = sketch.difference(&snapshot).unwrap();
        assert_eq!(recent.estimate_distinct_pairs(0.25), 4);
        let top = recent.estimate_top_k(1, 0.25);
        assert_eq!(top.entries[0].group, 2);
        assert_eq!(top.entries[0].estimated_frequency, 4);
        assert_eq!(recent.updates_processed(), 4);
        assert_eq!(recent.net_updates(), 4);
    }

    #[test]
    fn difference_of_identical_states_is_empty() {
        let mut sketch = DistinctCountSketch::new(small_config(21));
        for s in 0..40u32 {
            sketch.insert(SourceAddr(s), DestAddr(3));
        }
        let diff = sketch.difference(&sketch.clone()).unwrap();
        assert_eq!(diff.estimate_distinct_pairs(0.25), 0);
        assert!(diff.estimate_top_k(5, 0.25).entries.is_empty());
    }

    #[test]
    fn difference_equals_suffix_built_fresh() {
        let mut full = DistinctCountSketch::new(small_config(22));
        let mut suffix_only = DistinctCountSketch::new(small_config(22));
        for s in 0..100u32 {
            full.insert(SourceAddr(s), DestAddr(1));
        }
        let snapshot = full.clone();
        for s in 0..60u32 {
            full.insert(SourceAddr(5000 + s), DestAddr(4));
            suffix_only.insert(SourceAddr(5000 + s), DestAddr(4));
        }
        let diff = full.difference(&snapshot).unwrap();
        assert_eq!(
            diff.distinct_sample(0.25),
            suffix_only.distinct_sample(0.25)
        );
        assert_eq!(
            diff.estimate_top_k(3, 0.25),
            suffix_only.estimate_top_k(3, 0.25)
        );
    }

    #[test]
    fn difference_rejects_incompatible() {
        let a = DistinctCountSketch::new(small_config(1));
        let b = DistinctCountSketch::new(small_config(2));
        assert!(a.difference(&b).is_err());
    }

    #[test]
    fn group_frequency_point_query_matches_top_k() {
        let mut sketch = DistinctCountSketch::new(small_config(23));
        for s in 0..80u32 {
            sketch.insert(SourceAddr(s), DestAddr(6));
        }
        let top = sketch.estimate_top_k(1, 0.25);
        assert_eq!(
            sketch.estimate_group_frequency(6, 0.25),
            top.entries[0].estimated_frequency
        );
        assert_eq!(sketch.estimate_group_frequency(999, 0.25), 0);
    }

    #[test]
    fn tabulation_family_produces_working_sketch() {
        let config = SketchConfig::builder()
            .buckets_per_table(512)
            .hash_family(crate::config::HashFamily::Tabulation)
            .seed(24)
            .build()
            .unwrap();
        assert_eq!(config.hash_family(), crate::config::HashFamily::Tabulation);
        let mut sketch = DistinctCountSketch::new(config);
        for s in 0..200u32 {
            sketch.insert(SourceAddr(s), DestAddr(s % 4));
        }
        let est = sketch.estimate_top_k(4, 0.25);
        assert_eq!(est.entries.len(), 4);
        let total: u64 = est.entries.iter().map(|e| e.estimated_frequency).sum();
        assert!((100..400).contains(&total), "total = {total}");
    }

    #[cfg(feature = "serde")]
    #[test]
    fn tabulation_sketch_serde_roundtrips() {
        let config = SketchConfig::builder()
            .buckets_per_table(64)
            .hash_family(crate::config::HashFamily::Tabulation)
            .seed(25)
            .build()
            .unwrap();
        let mut sketch = DistinctCountSketch::new(config);
        for s in 0..100u32 {
            sketch.insert(SourceAddr(s), DestAddr(1));
        }
        let json = serde_json::to_string(&sketch).unwrap();
        let back: DistinctCountSketch = serde_json::from_str(&json).unwrap();
        assert_eq!(sketch.estimate_top_k(1, 0.25), back.estimate_top_k(1, 0.25));
    }

    #[cfg(feature = "serde")]
    #[test]
    fn sketch_serde_roundtrips_and_answers_identically() {
        let mut sketch = DistinctCountSketch::new(small_config(13));
        for s in 0..500u32 {
            sketch.insert(SourceAddr(s), DestAddr(s % 7));
        }
        let json = serde_json::to_string(&sketch).unwrap();
        let back: DistinctCountSketch = serde_json::from_str(&json).unwrap();
        assert_eq!(sketch.estimate_top_k(3, 0.25), back.estimate_top_k(3, 0.25));
    }

    #[test]
    fn distinct_sample_agrees_with_singletons_view() {
        // Both views are built on the same per-level scan; the sample
        // must equal the singleton enumeration restricted to levels at
        // or above the inference level.
        let mut sketch = DistinctCountSketch::new(small_config(41));
        for s in 0..800u32 {
            sketch.insert(SourceAddr(s), DestAddr(s % 13));
        }
        let sample = sketch.distinct_sample(0.25);
        let mut expected: Vec<FlowKey> = sketch
            .singletons()
            .into_iter()
            .filter(|&(level, _)| level >= sample.level)
            .map(|(_, k)| k)
            .collect();
        expected.sort_unstable();
        assert_eq!(sample.keys, expected);
    }

    #[test]
    fn batch_scratch_never_reallocates_across_chunks() {
        // Satellite of the batch-path fix: `update_batch` sizes its
        // scratch exactly once per call. The slabs are boxed slices, so
        // any reallocation would have to move them — pin the base
        // pointers before routing and assert they never change while a
        // multi-chunk batch streams through.
        let mut sketch = DistinctCountSketch::new(small_config(50));
        let updates: Vec<FlowUpdate> = (0..3 * BATCH_CHUNK + 17)
            .map(|i| FlowUpdate::insert(SourceAddr(i as u32), DestAddr(1)))
            .collect();
        let mut scratch = BatchScratch::new(updates.len(), sketch.config().num_tables());
        let slab_ptr = scratch.slab.as_ptr();
        let slab_len = scratch.slab.len();
        let cap = scratch.chunk_cap();
        assert_eq!(cap, BATCH_CHUNK, "long batches use full-size chunks");
        for chunk in updates.chunks(BATCH_CHUNK) {
            sketch.route_chunk(chunk, &mut scratch);
            assert_eq!(scratch.slab.as_ptr(), slab_ptr);
            assert_eq!(scratch.slab.len(), slab_len);
            assert_eq!(scratch.chunk_cap(), cap);
        }
    }

    #[test]
    fn update_batch_plans_are_bit_identical_around_the_cutoff() {
        // The auto-select cutoff is a pure performance knob: both the
        // scalar and routed plans must leave bit-identical state. Probe
        // one size on each side of BATCH_MIN_ROUTED plus the boundary
        // itself, with deletes mixed in.
        for n in [BATCH_MIN_ROUTED - 1, BATCH_MIN_ROUTED, BATCH_MIN_ROUTED + 1] {
            let updates: Vec<FlowUpdate> = (0..n)
                .map(|i| {
                    let key = (SourceAddr(i as u32 / 2), DestAddr(3));
                    if i % 4 == 3 {
                        FlowUpdate::delete(key.0, key.1)
                    } else {
                        FlowUpdate::insert(key.0, key.1)
                    }
                })
                .collect();
            let mut batched = DistinctCountSketch::new(small_config(51));
            let mut sequential = DistinctCountSketch::new(small_config(51));
            batched.update_batch(&updates);
            for &u in &updates {
                sequential.update(u);
            }
            assert_eq!(batched.to_state(), sequential.to_state(), "n = {n}");
        }
    }

    #[test]
    fn singletons_enumerates_decodable_pairs() {
        let mut sketch = DistinctCountSketch::new(small_config(40));
        for s in 0..10u32 {
            sketch.insert(SourceAddr(s), DestAddr(1));
        }
        let singles = sketch.singletons();
        // Small population: everything decodable, levels descending.
        assert_eq!(singles.len(), 10);
        for w in singles.windows(2) {
            assert!(w[0].0 >= w[1].0);
        }
        for &(level, key) in &singles {
            assert_eq!(sketch.level_of(key), level);
        }
    }
}
