//! An addressable (indexed) max-heap.
//!
//! The Tracking DCS keeps, per first-level bucket `b`, a max-heap
//! `topDestHeap(b)` over destination sample frequencies that must support
//! *in-place priority adjustment* ("find entry for destination v', update
//! frequency, and adjust the heap" — Fig. 6, steps 11/21) as well as the
//! classic `deleteMax` used by `TrackTopk` (Fig. 7, step 11). A plain
//! `BinaryHeap` cannot do the former, so this module implements a binary
//! heap with a key → slot index map giving `O(log n)` increase/decrease
//! and removal, `O(1)` lookup, and a non-destructive `top_k` traversal.

use std::hash::Hash;

use dcs_hash::det::DetHashMap;

/// A binary max-heap whose entries can be addressed by key.
///
/// Priorities are `u64`; ties are broken by the larger key so that
/// ordering (and therefore every top-k answer in the crate) is fully
/// deterministic.
///
/// # Examples
///
/// ```
/// use dcs_core::heap::IndexedMaxHeap;
///
/// let mut heap = IndexedMaxHeap::new();
/// heap.set(7u32, 3);
/// heap.set(9u32, 5);
/// heap.set(7u32, 10); // in-place priority update
/// assert_eq!(heap.peek_max(), Some((&7u32, 10)));
/// assert_eq!(heap.pop_max(), Some((7u32, 10)));
/// assert_eq!(heap.pop_max(), Some((9u32, 5)));
/// assert_eq!(heap.pop_max(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IndexedMaxHeap<K> {
    /// Heap-ordered `(priority, key)` slots.
    slots: Vec<(u64, K)>,
    /// Key → slot index.
    positions: DetHashMap<K, usize>,
    /// Number of [`adjust`](Self::adjust) calls that would have driven a
    /// priority below zero. Never increments on well-formed streams;
    /// see [`underflow_count`](Self::underflow_count).
    underflows: u64,
    /// Number of [`adjust`](Self::adjust) calls that would have pushed a
    /// priority past `u64::MAX`. Never increments on well-formed
    /// streams; see [`overflow_count`](Self::overflow_count).
    overflows: u64,
    /// Total number of [`adjust`](Self::adjust) calls, clamped or not.
    adjusts: u64,
}

impl<K: Ord + Hash + Clone> IndexedMaxHeap<K> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            positions: DetHashMap::default(),
            underflows: 0,
            overflows: 0,
            adjusts: 0,
        }
    }

    /// Number of entries in the heap.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the heap holds no entries.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Returns the priority of `key`, if present.
    pub fn priority(&self, key: &K) -> Option<u64> {
        self.positions.get(key).map(|&i| self.slots[i].0)
    }

    /// Inserts `key` with `priority`, or updates its priority in place.
    pub fn set(&mut self, key: K, priority: u64) {
        match self.positions.get(&key) {
            Some(&i) => {
                let old = self.slots[i].0;
                self.slots[i].0 = priority;
                if priority > old {
                    self.sift_up(i);
                } else if priority < old {
                    self.sift_down(i);
                }
            }
            None => {
                let i = self.slots.len();
                self.positions.insert(key.clone(), i);
                self.slots.push((priority, key));
                self.sift_up(i);
            }
        }
    }

    /// Adds `delta` to `key`'s priority, inserting it at `max(delta, 0)`
    /// if absent. Entries whose priority reaches zero are removed, which
    /// matches the Tracking DCS semantics: a destination with no
    /// singleton occurrences left contributes nothing to the sample.
    ///
    /// An adjustment that would take the priority *below* zero, or past
    /// `u64::MAX`, is clamped — but counted in
    /// [`underflow_count`](Self::underflow_count) /
    /// [`overflow_count`](Self::overflow_count) rather than silently
    /// swallowed, so the tracking layer's invariant check (and the
    /// telemetry layer's clamp counters) can surface it. Previously a
    /// positive overflow saturated at `u64::MAX` with no trace, pinning
    /// the entry at the top of the heap forever.
    pub fn adjust(&mut self, key: K, delta: i64) {
        self.adjusts += 1;
        let current = self.priority(&key).unwrap_or(0);
        let next = if delta >= 0 {
            match current.checked_add(delta.unsigned_abs()) {
                Some(next) => next,
                None => {
                    self.overflows += 1;
                    u64::MAX
                }
            }
        } else {
            match current.checked_sub(delta.unsigned_abs()) {
                Some(next) => next,
                None => {
                    self.underflows += 1;
                    0
                }
            }
        };
        if next == 0 {
            self.remove(&key);
        } else {
            self.set(key, next);
        }
    }

    /// Number of [`adjust`](Self::adjust) calls that tried to push a
    /// priority below zero (and were clamped). On well-formed streams a
    /// Tracking DCS never decrements a group past zero, so a nonzero
    /// count is evidence of an ill-formed stream or a bookkeeping bug.
    pub fn underflow_count(&self) -> u64 {
        self.underflows
    }

    /// Number of [`adjust`](Self::adjust) calls that tried to push a
    /// priority past `u64::MAX` (and were pinned there). Sample
    /// frequencies are bounded by the stream length, so a nonzero count
    /// is evidence of an ill-formed stream or a bookkeeping bug.
    pub fn overflow_count(&self) -> u64 {
        self.overflows
    }

    /// Total number of [`adjust`](Self::adjust) calls made against this
    /// heap (telemetry gauge for Fig. 6 step 11/21 traffic).
    pub fn adjust_count(&self) -> u64 {
        self.adjusts
    }

    /// Removes `key`, returning its priority if it was present.
    pub fn remove(&mut self, key: &K) -> Option<u64> {
        let i = self.positions.remove(key)?;
        let (priority, _) = self.slots.swap_remove(i);
        if i < self.slots.len() {
            let moved_key = self.slots[i].1.clone();
            self.positions.insert(moved_key, i);
            self.sift_down(i);
            self.sift_up(i);
        }
        Some(priority)
    }

    /// Returns the maximum entry without removing it.
    pub fn peek_max(&self) -> Option<(&K, u64)> {
        self.slots.first().map(|(p, k)| (k, *p))
    }

    /// Removes and returns the maximum entry — the paper's `deleteMax`.
    pub fn pop_max(&mut self) -> Option<(K, u64)> {
        let (_, key) = self.slots.first().cloned()?;
        let priority = self.remove(&key)?;
        Some((key, priority))
    }

    /// Returns the `k` largest entries in descending order *without
    /// mutating the heap*, in `O(k log k)` time.
    ///
    /// This is how `TrackTopk` reads the top-k destinations here: the
    /// paper pops `k` times and would need to re-insert; a frontier
    /// traversal over the heap array gives the same answer read-only.
    pub fn top_k(&self, k: usize) -> Vec<(K, u64)> {
        let mut out = Vec::with_capacity(k.min(self.slots.len()));
        if k == 0 || self.slots.is_empty() {
            return out;
        }
        // Frontier of slot indices ordered like `pop_max`: priority
        // descending, ties broken by the larger key.
        let mut frontier = std::collections::BinaryHeap::new();
        frontier.push((self.slots[0].0, self.slots[0].1.clone(), 0usize));
        while out.len() < k {
            let Some((priority, key, slot)) = frontier.pop() else {
                break;
            };
            out.push((key, priority));
            for child in [2 * slot + 1, 2 * slot + 2] {
                if child < self.slots.len() {
                    frontier.push((self.slots[child].0, self.slots[child].1.clone(), child));
                }
            }
        }
        out
    }

    /// The heap-ordered `(priority, key)` slots in exact array order —
    /// the persistence view. Restoring this array verbatim through
    /// [`from_parts`](Self::from_parts) reproduces not just the heap's
    /// content but its internal arrangement, so subsequent adjustments
    /// permute a restored heap exactly as they would the original.
    pub fn slots(&self) -> &[(u64, K)] {
        &self.slots
    }

    /// Rebuilds a heap from slots captured by [`slots`](Self::slots)
    /// (plus the anomaly counters), re-deriving the key → slot position
    /// map.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural violation if the
    /// slots contain a duplicate key or are not max-heap ordered —
    /// callers get either a heap bit-identical to the captured one or
    /// an error, never a silently repaired structure.
    pub fn from_parts(
        slots: Vec<(u64, K)>,
        underflows: u64,
        overflows: u64,
        adjusts: u64,
    ) -> Result<Self, String> {
        let mut positions = DetHashMap::default();
        for (i, (_, key)) in slots.iter().enumerate() {
            if positions.insert(key.clone(), i).is_some() {
                return Err(format!("duplicate heap key at slot {i}"));
            }
        }
        for i in 1..slots.len() {
            let parent = (i - 1) / 2;
            if slots[i] > slots[parent] {
                return Err(format!("heap order violated at slot {i}"));
            }
        }
        Ok(Self {
            slots,
            positions,
            underflows,
            overflows,
            adjusts,
        })
    }

    /// Iterates over all `(key, priority)` entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.slots.iter().map(|(p, k)| (k, *p))
    }

    /// Approximate heap memory used by the structure's backing storage.
    pub fn heap_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<(u64, K)>()
            + self.positions.capacity() * (std::mem::size_of::<(K, usize)>() + 8)
    }

    /// `(priority, key)` ordering: max by priority, ties by larger key.
    #[inline]
    fn greater(&self, a: usize, b: usize) -> bool {
        self.slots[a] > self.slots[b]
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.slots.swap(a, b);
        self.positions.insert(self.slots[a].1.clone(), a);
        self.positions.insert(self.slots[b].1.clone(), b);
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.greater(i, parent) {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let mut largest = i;
            for child in [2 * i + 1, 2 * i + 2] {
                if child < self.slots.len() && self.greater(child, largest) {
                    largest = child;
                }
            }
            if largest == i {
                break;
            }
            self.swap(i, largest);
            i = largest;
        }
    }

    /// Debug-only invariant check: heap order and position-map coherence.
    #[cfg(test)]
    fn assert_invariants(&self) {
        assert_eq!(self.slots.len(), self.positions.len());
        for (i, (_, k)) in self.slots.iter().enumerate() {
            assert_eq!(self.positions[k], i, "position map out of sync");
            if i > 0 {
                let parent = (i - 1) / 2;
                assert!(!self.greater(i, parent), "heap order violated at slot {i}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn empty_heap_behaves() {
        let mut h: IndexedMaxHeap<u32> = IndexedMaxHeap::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(h.peek_max(), None);
        assert_eq!(h.pop_max(), None);
        assert_eq!(h.priority(&1), None);
        assert_eq!(h.remove(&1), None);
        assert!(h.top_k(3).is_empty());
    }

    #[test]
    fn pop_order_is_descending_with_key_tiebreak() {
        let mut h = IndexedMaxHeap::new();
        h.set(1u32, 5);
        h.set(2u32, 5);
        h.set(3u32, 7);
        assert_eq!(h.pop_max(), Some((3, 7)));
        // Tie at priority 5: larger key first (deterministic).
        assert_eq!(h.pop_max(), Some((2, 5)));
        assert_eq!(h.pop_max(), Some((1, 5)));
    }

    #[test]
    fn adjust_to_zero_removes_entry() {
        let mut h = IndexedMaxHeap::new();
        h.adjust(5u32, 2);
        assert_eq!(h.priority(&5), Some(2));
        h.adjust(5u32, -2);
        assert_eq!(h.priority(&5), None);
        assert!(h.is_empty());
    }

    #[test]
    fn adjust_missing_key_with_negative_delta_is_noop() {
        let mut h = IndexedMaxHeap::new();
        h.adjust(5u32, -3);
        assert!(h.is_empty());
    }

    #[test]
    fn underflowing_adjust_is_clamped_and_counted() {
        let mut h = IndexedMaxHeap::new();
        h.set(1u32, 2);
        assert_eq!(h.underflow_count(), 0);
        h.adjust(1u32, -5);
        assert_eq!(h.priority(&1), None, "clamped to zero and removed");
        assert_eq!(h.underflow_count(), 1);
        h.adjust(9u32, -1);
        assert_eq!(h.underflow_count(), 2, "missing key counts too");
        // An exact-to-zero adjustment is legitimate, not an underflow.
        h.set(2u32, 3);
        h.adjust(2u32, -3);
        assert_eq!(h.underflow_count(), 2);
    }

    #[test]
    fn overflowing_adjust_is_pinned_and_counted() {
        let mut h = IndexedMaxHeap::new();
        h.set(1u32, u64::MAX - 1);
        // Exactly reaching MAX is a legitimate adjustment.
        h.adjust(1u32, 1);
        assert_eq!(h.priority(&1), Some(u64::MAX));
        assert_eq!(h.overflow_count(), 0);
        // One past MAX pins at MAX and is counted, not silent.
        h.adjust(1u32, 1);
        assert_eq!(h.priority(&1), Some(u64::MAX));
        assert_eq!(h.overflow_count(), 1);
        h.adjust(1u32, i64::MAX);
        assert_eq!(h.overflow_count(), 2);
        assert_eq!(h.underflow_count(), 0);
        assert_eq!(h.adjust_count(), 3);
        // The pinned entry is still adjustable back down.
        h.adjust(1u32, -10);
        assert_eq!(h.priority(&1), Some(u64::MAX - 10));
        assert_eq!(h.overflow_count(), 2);
        assert_eq!(h.adjust_count(), 4);
    }

    #[test]
    fn top_k_matches_pop_order_and_does_not_mutate() {
        let mut h = IndexedMaxHeap::new();
        for i in 0..50u32 {
            h.set(i, u64::from((i * 37) % 23));
        }
        let snapshot = h.top_k(10);
        assert_eq!(h.len(), 50, "top_k must not mutate");
        let mut popped = Vec::new();
        for _ in 0..10 {
            popped.push(h.pop_max().unwrap());
        }
        assert_eq!(snapshot, popped);
    }

    #[test]
    fn top_k_larger_than_len_returns_everything() {
        let mut h = IndexedMaxHeap::new();
        h.set(1u32, 1);
        h.set(2u32, 2);
        assert_eq!(h.top_k(10).len(), 2);
    }

    #[test]
    fn set_updates_in_place() {
        let mut h = IndexedMaxHeap::new();
        for i in 0..20u32 {
            h.set(i, u64::from(i));
        }
        h.set(0, 100);
        h.assert_invariants();
        assert_eq!(h.peek_max(), Some((&0, 100)));
        h.set(0, 0);
        h.assert_invariants();
        assert_ne!(h.peek_max().unwrap().0, &0);
        assert_eq!(h.len(), 20);
    }

    #[test]
    fn remove_interior_keeps_invariants() {
        let mut h = IndexedMaxHeap::new();
        for i in 0..31u32 {
            h.set(i, u64::from((i * 13) % 17));
        }
        for victim in [5u32, 0, 30, 16] {
            h.remove(&victim);
            h.assert_invariants();
        }
        assert_eq!(h.len(), 27);
    }

    #[test]
    fn iter_covers_all_entries() {
        let mut h = IndexedMaxHeap::new();
        for i in 0..10u32 {
            h.set(i, 1);
        }
        assert_eq!(h.iter().count(), 10);
        assert!(h.heap_bytes() > 0);
    }

    #[test]
    fn from_parts_restores_exact_arrangement_and_validates() {
        let mut h = IndexedMaxHeap::new();
        for i in 0..40u32 {
            h.adjust(i % 7, 1);
        }
        h.adjust(3u32, -1);
        let slots = h.slots().to_vec();
        let back = IndexedMaxHeap::from_parts(
            slots.clone(),
            h.underflow_count(),
            h.overflow_count(),
            h.adjust_count(),
        )
        .unwrap();
        back.assert_invariants();
        assert_eq!(back.slots(), h.slots(), "exact arrangement, not a rebuild");
        assert_eq!(back.adjust_count(), h.adjust_count());

        let mut dup = slots.clone();
        dup.push(dup[0]);
        assert!(IndexedMaxHeap::from_parts(dup, 0, 0, 0).is_err());

        let mut bad = slots;
        assert!(bad.len() >= 2, "need a child slot to violate order");
        bad[1].0 = u64::MAX;
        assert!(IndexedMaxHeap::from_parts(bad, 0, 0, 0).is_err());
    }

    /// Model-based property test against a BTreeMap.
    #[derive(Debug, Clone)]
    enum Op {
        Set(u8, u64),
        Adjust(u8, i64),
        Remove(u8),
        PopMax,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (any::<u8>(), 1u64..100).prop_map(|(k, p)| Op::Set(k, p)),
            (any::<u8>(), -5i64..6).prop_map(|(k, d)| Op::Adjust(k, d)),
            any::<u8>().prop_map(Op::Remove),
            Just(Op::PopMax),
        ]
    }

    proptest! {
        #[test]
        fn heap_matches_map_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
            let mut heap = IndexedMaxHeap::new();
            let mut model: BTreeMap<u8, u64> = BTreeMap::new();
            for op in ops {
                match op {
                    Op::Set(k, p) => {
                        heap.set(k, p);
                        model.insert(k, p);
                    }
                    Op::Adjust(k, d) => {
                        heap.adjust(k, d);
                        let next = (*model.get(&k).unwrap_or(&0) as i64 + d).max(0) as u64;
                        if next == 0 {
                            model.remove(&k);
                        } else {
                            model.insert(k, next);
                        }
                    }
                    Op::Remove(k) => {
                        let got = heap.remove(&k);
                        let expected = model.remove(&k);
                        prop_assert_eq!(got, expected);
                    }
                    Op::PopMax => {
                        let got = heap.pop_max();
                        // Model max: highest priority, ties to larger key.
                        let expected = model
                            .iter()
                            .map(|(&k, &p)| (p, k))
                            .max()
                            .map(|(p, k)| (k, p));
                        if let Some((k, _)) = expected {
                            model.remove(&k);
                        }
                        prop_assert_eq!(got, expected);
                    }
                }
                heap.assert_invariants();
                prop_assert_eq!(heap.len(), model.len());
            }
            // Drain both and compare orderings.
            let mut drained = Vec::new();
            while let Some(e) = heap.pop_max() {
                drained.push(e);
            }
            let mut expected: Vec<(u8, u64)> = model.into_iter().collect();
            expected.sort_by_key(|&(k, p)| std::cmp::Reverse((p, k)));
            prop_assert_eq!(drained, expected);
        }
    }
}
