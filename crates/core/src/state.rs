//! Plain-data snapshots of sketch state for persistence.
//!
//! A checkpoint layer (see the `dcs-persist` crate) needs every word of
//! a synopsis' internal state — the per-level counter/key-sum/fp-sum
//! slabs, the tracking layer's singleton multisets and heap slot
//! arrays, the bookkeeping counters — but the storage types themselves
//! are deliberately private. This module is the boundary: public
//! structure-of-vectors types that hold *exactly* the persistent state,
//! produced by [`DistinctCountSketch::to_state`] /
//! [`TrackingDcs::to_state`] and consumed by the matching
//! `from_state` constructors.
//!
//! Two design rules make checkpoint/restore *bit-identical* rather
//! than merely equivalent:
//!
//! * **Hash functions are never serialized.** Every hash is derived
//!   deterministically from `SketchConfig::seed` via `SeedSequence`,
//!   so persisting the config reconstructs them exactly.
//! * **Heap slots are captured in array order, singletons in sorted
//!   order.** The tracking heaps break ties by arrangement-independent
//!   ordering, but the *internal slot arrangement* still determines
//!   how future `adjust` calls permute the array. Restoring slots
//!   verbatim (and rebuilding the derived position map) means a
//!   restored sketch replaying the suffix stream reaches the same
//!   arrangement as the uninterrupted run. Singleton maps have no
//!   observable order, so they are canonicalized by packed key.
//!
//! [`DistinctCountSketch::to_state`]: crate::DistinctCountSketch::to_state
//! [`TrackingDcs::to_state`]: crate::TrackingDcs::to_state

use crate::config::SketchConfig;

/// The three storage slabs of one materialized level, as plain vectors.
///
/// Lengths are redundant with the sketch configuration (`counts` holds
/// `r·s·65` counters, the sums `r·s` words each) and are re-validated
/// against it on restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSlabs {
    /// The first-level bucket index this slab belongs to.
    pub level: u32,
    /// `r·s·65` signature counters, stride-indexed by bucket slot.
    pub counts: Vec<i64>,
    /// `r·s` wrapping key sums, one per bucket slot.
    pub key_sums: Vec<u64>,
    /// `r·s` wrapping fingerprint sums, one per bucket slot.
    pub fp_sums: Vec<u64>,
}

/// Complete persistent state of a [`DistinctCountSketch`].
///
/// Captures every materialized level — including levels that were
/// touched and have since returned to all-zero — so a restored sketch
/// allocates exactly the same levels and `to_state` round-trips to an
/// equal value.
///
/// [`DistinctCountSketch`]: crate::DistinctCountSketch
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchState {
    /// Shape, seed, grouping, and hash family (hashes re-derive from
    /// the seed).
    pub config: SketchConfig,
    /// Total updates processed.
    pub updates_processed: u64,
    /// Net sum of update signs.
    pub net_updates: i64,
    /// Materialized levels, strictly ascending by `level`.
    pub levels: Vec<LevelSlabs>,
}

/// Persistent state of one tracking level: the singleton multiset and
/// the destination heap, plus the heap's anomaly counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackingLevelState {
    /// The first-level bucket index.
    pub level: u32,
    /// `(packed pair, table count)` entries sorted ascending by packed
    /// pair — the canonical order (the live map has none).
    pub singletons: Vec<(u64, u32)>,
    /// `(priority, group)` heap slots in *exact array order*; the
    /// key → slot position map is derived on restore.
    pub heap_slots: Vec<(u64, u32)>,
    /// Clamped negative heap adjustments observed so far.
    pub heap_underflows: u64,
    /// Clamped positive heap adjustments observed so far.
    pub heap_overflows: u64,
    /// Total heap adjustments observed so far.
    pub heap_adjusts: u64,
}

/// Complete persistent state of a [`TrackingDcs`]: the underlying
/// basic sketch plus the incrementally maintained tracking structures.
///
/// The tracking structures *could* be rebuilt from the counters
/// (`TrackingDcs::from_sketch` does exactly that), but a rebuild
/// produces a different internal heap arrangement than the incremental
/// history did — and then a restored run's future tie-breaking state
/// diverges from the uninterrupted run's, even though every query
/// answer agrees. Persisting them verbatim keeps recovery bit-identical.
///
/// [`TrackingDcs`]: crate::TrackingDcs
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackingState {
    /// The underlying counter storage and configuration.
    pub sketch: SketchState,
    /// Non-empty tracking levels, strictly ascending by `level`.
    /// (Levels with no singletons, an empty heap, and zero counters are
    /// omitted; restore fills them with fresh empties.)
    pub levels: Vec<TrackingLevelState>,
    /// Decrements of never-tracked pairs observed so far.
    pub untracked_decrements: u64,
}

impl TrackingLevelState {
    /// Whether this level carries no state worth persisting.
    pub fn is_empty(&self) -> bool {
        self.singletons.is_empty()
            && self.heap_slots.is_empty()
            && self.heap_underflows == 0
            && self.heap_overflows == 0
            && self.heap_adjusts == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::DistinctCountSketch;
    use crate::tracking::TrackingDcs;
    use crate::types::{DestAddr, SourceAddr};

    fn config(seed: u64) -> SketchConfig {
        SketchConfig::builder()
            .num_tables(3)
            .buckets_per_table(64)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn sketch_state_roundtrips_bit_identically() {
        let mut sketch = DistinctCountSketch::new(config(1));
        for s in 0..500u32 {
            sketch.insert(SourceAddr(s), DestAddr(s % 9));
        }
        for s in 0..100u32 {
            sketch.delete(SourceAddr(s), DestAddr(s % 9));
        }
        let state = sketch.to_state();
        let restored = DistinctCountSketch::from_state(state.clone()).unwrap();
        assert_eq!(restored.to_state(), state);
        assert_eq!(
            restored.estimate_top_k(5, 0.25),
            sketch.estimate_top_k(5, 0.25)
        );
        assert_eq!(restored.updates_processed(), sketch.updates_processed());
        assert_eq!(restored.net_updates(), sketch.net_updates());
    }

    #[test]
    fn restored_sketch_continues_identically() {
        // Linearity in action: restore mid-stream, replay the suffix,
        // land on the uninterrupted run's exact counters.
        let mut full = DistinctCountSketch::new(config(2));
        let mut prefix = DistinctCountSketch::new(config(2));
        for s in 0..400u32 {
            full.insert(SourceAddr(s), DestAddr(s % 7));
            if s < 250 {
                prefix.insert(SourceAddr(s), DestAddr(s % 7));
            }
        }
        let mut resumed = DistinctCountSketch::from_state(prefix.to_state()).unwrap();
        for s in 250..400u32 {
            resumed.insert(SourceAddr(s), DestAddr(s % 7));
        }
        assert_eq!(resumed.to_state(), full.to_state());
    }

    #[test]
    fn tracking_state_roundtrips_bit_identically() {
        let mut t = TrackingDcs::new(config(3));
        for s in 0..600u32 {
            t.insert(SourceAddr(s), DestAddr(s % 11));
        }
        for s in 0..120u32 {
            t.delete(SourceAddr(s), DestAddr(s % 11));
        }
        let state = t.to_state();
        let restored = TrackingDcs::from_state(state.clone()).unwrap();
        assert_eq!(restored.to_state(), state);
        restored.check_tracking_invariants().unwrap();
        assert_eq!(restored.track_top_k(5, 0.25), t.track_top_k(5, 0.25));
        assert_eq!(restored.heap_adjusts(), t.heap_adjusts());
    }

    #[test]
    fn tracking_restore_preserves_heap_arrangement_not_just_content() {
        // from_sketch rebuilds and generally lands on a different slot
        // arrangement; from_state must not.
        let mut t = TrackingDcs::new(config(4));
        for s in 0..800u32 {
            t.insert(SourceAddr(s), DestAddr(s % 23));
        }
        let state = t.to_state();
        let restored = TrackingDcs::from_state(state.clone()).unwrap();
        // Exact slot vectors, not merely equal top-k answers.
        for (a, b) in state.levels.iter().zip(restored.to_state().levels.iter()) {
            assert_eq!(a.heap_slots, b.heap_slots, "level {}", a.level);
        }
    }

    #[test]
    fn from_state_rejects_wrong_dimensions() {
        let mut sketch = DistinctCountSketch::new(config(5));
        sketch.insert(SourceAddr(1), DestAddr(2));
        let mut state = sketch.to_state();
        state.levels[0].counts.pop();
        assert!(DistinctCountSketch::from_state(state).is_err());
    }

    #[test]
    fn from_state_rejects_out_of_range_and_unsorted_levels() {
        let mut sketch = DistinctCountSketch::new(config(6));
        sketch.insert(SourceAddr(1), DestAddr(2));
        let good = sketch.to_state();

        let mut out_of_range = good.clone();
        out_of_range.levels[0].level = 64;
        assert!(DistinctCountSketch::from_state(out_of_range).is_err());

        let mut duplicated = good.clone();
        let dup = duplicated.levels[0].clone();
        duplicated.levels.push(dup);
        assert!(DistinctCountSketch::from_state(duplicated).is_err());
    }

    #[test]
    fn tracking_from_state_rejects_corrupt_structures() {
        let mut t = TrackingDcs::new(config(7));
        for s in 0..200u32 {
            t.insert(SourceAddr(s), DestAddr(s % 7));
        }
        let good = t.to_state();
        let with_singletons = good
            .levels
            .iter()
            .position(|l| !l.singletons.is_empty())
            .expect("a 200-pair stream must track singletons somewhere");
        let with_big_heap = good
            .levels
            .iter()
            .position(|l| l.heap_slots.len() >= 2)
            .expect("7 destinations must give some heap two entries");

        // Duplicate singleton key.
        let mut dup_singleton = good.clone();
        let first = dup_singleton.levels[with_singletons].singletons[0];
        dup_singleton.levels[with_singletons].singletons.push(first);
        assert!(TrackingDcs::from_state(dup_singleton).is_err());

        // Zero-count singleton.
        let mut zero_count = good.clone();
        zero_count.levels[with_singletons].singletons[0].1 = 0;
        assert!(TrackingDcs::from_state(zero_count).is_err());

        // Heap-order violation: force a child above its parent.
        let mut bad_heap = good;
        bad_heap.levels[with_big_heap].heap_slots[0].0 = 1;
        bad_heap.levels[with_big_heap].heap_slots[1].0 = u64::MAX;
        assert!(TrackingDcs::from_state(bad_heap).is_err());
    }

    #[test]
    fn empty_tracking_levels_are_omitted_and_restored() {
        let mut t = TrackingDcs::new(config(8));
        t.insert(SourceAddr(1), DestAddr(2));
        let state = t.to_state();
        assert!(
            state.levels.len() <= 3,
            "only touched levels persisted, got {}",
            state.levels.len()
        );
        let restored = TrackingDcs::from_state(state).unwrap();
        restored.check_tracking_invariants().unwrap();
    }
}
