//! Space accounting — the §6.1 storage analysis as code.
//!
//! The paper compares its synopses against the "naive, brute-force
//! scheme" that stores every distinct source-destination pair plus a
//! frequency count (12 bytes per pair in the paper's 4-byte-counter
//! accounting). These helpers reproduce that comparison for arbitrary
//! `U`, and are what the `table_space` bench binary prints.

use crate::config::SketchConfig;

/// A storage breakdown for one synopsis, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpaceReport {
    /// Bytes in count-signature counter slabs (each allocated level
    /// holds its `r·s` signatures in three flat arrays).
    pub counter_bytes: usize,
    /// Bytes in tracking structures (singleton sets + heaps); zero for
    /// a basic sketch.
    pub tracking_bytes: usize,
}

impl SpaceReport {
    /// Total bytes.
    pub fn total(&self) -> usize {
        self.counter_bytes + self.tracking_bytes
    }
}

/// Bytes the paper's brute-force scheme needs for `u` distinct pairs:
/// source (4) + destination (4) + frequency count (4) per pair.
pub fn brute_force_bytes(u: u64) -> u64 {
    u * 12
}

/// Predicted counter bytes for a sketch over `u` distinct pairs:
/// `⌈log₂ u⌉ + 1` non-empty levels (the geometric hash leaves deeper
/// levels empty with high probability) × `r·s` signatures × 68 counters
/// (the paper's 65 plus the two singleton-screen sums plus the
/// totals-mirror word of the wide screen pass, DESIGN.md §16).
///
/// This is the formula behind the paper's "23 non-empty first-level
/// buckets at `U = 8·10⁶` ⇒ ≈2.3 MB" calculation (with 4-byte counters
/// there; we account our actual 8-byte counters).
pub fn predicted_sketch_bytes(config: &SketchConfig, u: u64) -> u64 {
    // Bit length of u: pairs spread over levels 0..⌈log₂ U⌉ with high
    // probability (deeper levels expect < 1 pair).
    let levels = if u == 0 {
        0
    } else {
        u64::from(64 - u.leading_zeros())
    };
    let levels = levels.min(u64::from(config.max_levels()));
    levels * dcs_hash::cast::u64_from_usize(config.level_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brute_force_matches_paper_at_8m() {
        // §6.1: U = 8·10⁶ ⇒ ≈96 MB.
        assert_eq!(brute_force_bytes(8_000_000), 96_000_000);
    }

    #[test]
    fn predicted_bytes_match_paper_level_count() {
        // §6.1: ≈23 non-empty levels at U = 8·10⁶ (2^23 ≈ 8.4M). With
        // the paper's r = 3, s = 128 and our 68 counters (65 + the two
        // screening sums + the totals mirror): 23·3·128·68 counters.
        // The paper uses 4-byte counters (2.3 MB); ours are 8 bytes.
        let config = SketchConfig::paper_default();
        let bytes = predicted_sketch_bytes(&config, 8_000_000);
        let levels = bytes / config.level_bytes() as u64;
        assert_eq!(levels, 23);
        // 23 × 3 × 128 × 68 × 8 ≈ 4.8 MB (2.3 MB in the paper's 4-byte,
        // 65-counter accounting).
        assert_eq!(bytes, 23 * 3 * 128 * 68 * 8);
    }

    #[test]
    fn predicted_bytes_grow_logarithmically() {
        let config = SketchConfig::paper_default();
        let at_8m = predicted_sketch_bytes(&config, 8_000_000);
        let at_1b = predicted_sketch_bytes(&config, 1_000_000_000);
        // §6.1: growing U from 8·10⁶ to 10⁹ grows the sketch by ≈30/23
        // while brute force grows 125×.
        let ratio = at_1b as f64 / at_8m as f64;
        assert!((1.2..1.4).contains(&ratio), "ratio = {ratio}");
        assert_eq!(
            brute_force_bytes(1_000_000_000) / brute_force_bytes(8_000_000),
            125
        );
    }

    #[test]
    fn zero_pairs_need_no_space() {
        let config = SketchConfig::paper_default();
        assert_eq!(predicted_sketch_bytes(&config, 0), 0);
        assert_eq!(brute_force_bytes(0), 0);
    }

    #[test]
    fn report_totals() {
        let r = SpaceReport {
            counter_bytes: 100,
            tracking_bytes: 50,
        };
        assert_eq!(r.total(), 150);
    }
}
