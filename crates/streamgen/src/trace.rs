//! Compact binary trace encoding for flow-update streams.
//!
//! NetFlow-scale streams are large (the paper quotes 500 GB/day for one
//! backbone); a 9-byte fixed record (8-byte packed pair + 1-byte delta)
//! keeps recorded workloads replayable without JSON overhead. JSON
//! (via serde) remains available for small, human-readable fixtures —
//! `FlowUpdate` derives `Serialize`/`Deserialize` in `dcs-core`.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use dcs_core::{Delta, FlowKey, FlowUpdate};

/// Magic bytes identifying a trace file ("DCS1").
const MAGIC: &[u8; 4] = b"DCS1";

/// Errors from trace decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// The buffer does not start with the trace magic.
    BadMagic,
    /// The buffer length is not consistent with whole records.
    Truncated,
    /// A delta byte was neither 0 (delete) nor 1 (insert).
    BadDelta(u8),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "missing trace magic"),
            TraceError::Truncated => write!(f, "trace is truncated mid-record"),
            TraceError::BadDelta(b) => write!(f, "invalid delta byte {b}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Encodes a stream of updates into the binary trace format.
///
/// # Examples
///
/// ```
/// use dcs_core::{DestAddr, FlowUpdate, SourceAddr};
/// use dcs_streamgen::{decode_trace, encode_trace};
///
/// let updates = vec![FlowUpdate::insert(SourceAddr(1), DestAddr(2))];
/// let bytes = encode_trace(&updates);
/// assert_eq!(decode_trace(&bytes)?, updates);
/// # Ok::<(), dcs_streamgen::TraceError>(())
/// ```
pub fn encode_trace(updates: &[FlowUpdate]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + updates.len() * 9);
    buf.put_slice(MAGIC);
    for u in updates {
        buf.put_u64(u.key.packed());
        buf.put_u8(match u.delta {
            Delta::Insert => 1,
            Delta::Delete => 0,
        });
    }
    buf.freeze()
}

/// Decodes a binary trace back into updates.
///
/// # Errors
///
/// Returns [`TraceError`] if the magic is missing, the buffer length is
/// not a whole number of records, or a delta byte is invalid.
pub fn decode_trace(mut bytes: &[u8]) -> Result<Vec<FlowUpdate>, TraceError> {
    if bytes.len() < 4 || &bytes[..4] != MAGIC {
        return Err(TraceError::BadMagic);
    }
    bytes = &bytes[4..];
    if !bytes.len().is_multiple_of(9) {
        return Err(TraceError::Truncated);
    }
    let mut out = Vec::with_capacity(bytes.len() / 9);
    while bytes.has_remaining() {
        let packed = bytes.get_u64();
        let delta = match bytes.get_u8() {
            1 => Delta::Insert,
            0 => Delta::Delete,
            other => return Err(TraceError::BadDelta(other)),
        };
        let key = FlowKey::from_packed(packed);
        out.push(FlowUpdate { key, delta });
    }
    Ok(out)
}

/// Magic bytes identifying a *timed* trace ("DCT1").
const TIMED_MAGIC: &[u8; 4] = b"DCT1";

/// Encodes a time-annotated stream: 17-byte records
/// (8-byte tick + 8-byte packed pair + 1-byte delta).
///
/// # Examples
///
/// ```
/// use dcs_core::{DestAddr, FlowUpdate, SourceAddr};
/// use dcs_streamgen::timeline::TimedUpdate;
/// use dcs_streamgen::trace::{decode_timed_trace, encode_timed_trace};
///
/// let timed = vec![TimedUpdate {
///     at: 42,
///     update: FlowUpdate::insert(SourceAddr(1), DestAddr(2)),
/// }];
/// let bytes = encode_timed_trace(&timed);
/// assert_eq!(decode_timed_trace(&bytes)?, timed);
/// # Ok::<(), dcs_streamgen::TraceError>(())
/// ```
pub fn encode_timed_trace(updates: &[crate::timeline::TimedUpdate]) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + updates.len() * 17);
    buf.put_slice(TIMED_MAGIC);
    for t in updates {
        buf.put_u64(t.at);
        buf.put_u64(t.update.key.packed());
        buf.put_u8(match t.update.delta {
            Delta::Insert => 1,
            Delta::Delete => 0,
        });
    }
    buf.freeze()
}

/// Decodes a timed trace.
///
/// # Errors
///
/// Returns [`TraceError`] on a missing magic, partial record, or
/// invalid delta byte.
pub fn decode_timed_trace(
    mut bytes: &[u8],
) -> Result<Vec<crate::timeline::TimedUpdate>, TraceError> {
    if bytes.len() < 4 || &bytes[..4] != TIMED_MAGIC {
        return Err(TraceError::BadMagic);
    }
    bytes = &bytes[4..];
    if !bytes.len().is_multiple_of(17) {
        return Err(TraceError::Truncated);
    }
    let mut out = Vec::with_capacity(bytes.len() / 17);
    while bytes.has_remaining() {
        let at = bytes.get_u64();
        let packed = bytes.get_u64();
        let delta = match bytes.get_u8() {
            1 => Delta::Insert,
            0 => Delta::Delete,
            other => return Err(TraceError::BadDelta(other)),
        };
        out.push(crate::timeline::TimedUpdate {
            at,
            update: FlowUpdate {
                key: FlowKey::from_packed(packed),
                delta,
            },
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_core::{DestAddr, SourceAddr};
    use proptest::prelude::*;

    #[test]
    fn empty_trace_roundtrips() {
        let bytes = encode_trace(&[]);
        assert_eq!(bytes.len(), 4);
        assert_eq!(decode_trace(&bytes).unwrap(), vec![]);
    }

    #[test]
    fn record_size_is_nine_bytes() {
        let updates = vec![
            FlowUpdate::insert(SourceAddr(1), DestAddr(2)),
            FlowUpdate::delete(SourceAddr(3), DestAddr(4)),
        ];
        assert_eq!(encode_trace(&updates).len(), 4 + 18);
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert_eq!(decode_trace(b"NOPE"), Err(TraceError::BadMagic));
        assert_eq!(decode_trace(b"DC"), Err(TraceError::BadMagic));
    }

    #[test]
    fn truncation_is_rejected() {
        let updates = vec![FlowUpdate::insert(SourceAddr(1), DestAddr(2))];
        let bytes = encode_trace(&updates);
        assert_eq!(
            decode_trace(&bytes[..bytes.len() - 1]),
            Err(TraceError::Truncated)
        );
    }

    #[test]
    fn bad_delta_is_rejected() {
        let mut bytes = encode_trace(&[FlowUpdate::insert(SourceAddr(1), DestAddr(2))]).to_vec();
        *bytes.last_mut().unwrap() = 7;
        assert_eq!(decode_trace(&bytes), Err(TraceError::BadDelta(7)));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(TraceError::BadDelta(9).to_string().contains('9'));
        assert!(!TraceError::BadMagic.to_string().is_empty());
        assert!(!TraceError::Truncated.to_string().is_empty());
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_streams(
            records in proptest::collection::vec((any::<u64>(), any::<bool>()), 0..200)
        ) {
            let updates: Vec<FlowUpdate> = records
                .into_iter()
                .map(|(packed, ins)| FlowUpdate {
                    key: FlowKey::from_packed(packed),
                    delta: if ins { Delta::Insert } else { Delta::Delete },
                })
                .collect();
            let bytes = encode_trace(&updates);
            prop_assert_eq!(decode_trace(&bytes).unwrap(), updates);
        }
    }

    #[test]
    fn timed_trace_roundtrips() {
        use crate::timeline::TimedUpdate;
        let timed: Vec<TimedUpdate> = (0..50u32)
            .map(|i| TimedUpdate {
                at: u64::from(i) * 3,
                update: if i % 2 == 0 {
                    FlowUpdate::insert(SourceAddr(i), DestAddr(1))
                } else {
                    FlowUpdate::delete(SourceAddr(i), DestAddr(1))
                },
            })
            .collect();
        let bytes = encode_timed_trace(&timed);
        assert_eq!(bytes.len(), 4 + 50 * 17);
        assert_eq!(decode_timed_trace(&bytes).unwrap(), timed);
    }

    #[test]
    fn timed_trace_rejects_plain_trace_magic() {
        let plain = encode_trace(&[FlowUpdate::insert(SourceAddr(1), DestAddr(2))]);
        assert_eq!(decode_timed_trace(&plain), Err(TraceError::BadMagic));
        let timed = encode_timed_trace(&[]);
        assert_eq!(decode_trace(&timed), Err(TraceError::BadMagic));
    }

    #[test]
    fn timed_trace_truncation_rejected() {
        use crate::timeline::TimedUpdate;
        let timed = vec![TimedUpdate {
            at: 1,
            update: FlowUpdate::insert(SourceAddr(1), DestAddr(2)),
        }];
        let bytes = encode_timed_trace(&timed);
        assert_eq!(
            decode_timed_trace(&bytes[..bytes.len() - 2]),
            Err(TraceError::Truncated)
        );
    }
}
