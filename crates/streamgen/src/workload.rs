//! The paper's synthetic workload (§6.1).
//!
//! "Our update-stream generation process is characterized by three key
//! parameters: the total number of distinct source-destination IP-address
//! pairs `U`, the number of distinct destinations `d`, and the Zipfian
//! skew parameter `z` that determines the distribution of distinct
//! source IP addresses across the `d` distinct destinations."
//!
//! We realize this by drawing, for each of the `U` pairs, a destination
//! rank from `Zipf(d, z)` and pairing it with a *fresh* source for that
//! destination (a bijectively-scrambled per-destination counter), so the
//! generated pairs are distinct by construction and each destination's
//! exact distinct-source frequency is known.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use dcs_core::{DestAddr, FlowUpdate, SourceAddr};

use crate::zipf::Zipf;

/// Parameters of the paper's synthetic workload.
///
/// Paper defaults (§6.1): `U = 8·10⁶`, `d = 5·10⁴`,
/// `z ∈ {1.0, 1.5, 2.0, 2.5}`. Those sizes are minutes of work; tests
/// and quick runs use scaled-down values.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WorkloadConfig {
    /// `U`: total number of distinct source-destination pairs.
    pub distinct_pairs: u64,
    /// `d`: number of distinct destinations.
    pub num_destinations: u32,
    /// `z`: Zipfian skew of sources across destinations.
    pub skew: f64,
    /// RNG seed for destination draws and stream shuffling.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The paper's default parameters (`U = 8M`, `d = 50k`, `z = 1.0`).
    pub fn paper_default() -> Self {
        Self {
            distinct_pairs: 8_000_000,
            num_destinations: 50_000,
            skew: 1.0,
            seed: 0,
        }
    }

    /// A laptop-scale version preserving the `U/d` ratio
    /// (`U = 200k`, `d = 1250`).
    pub fn scaled_default() -> Self {
        Self {
            distinct_pairs: 200_000,
            num_destinations: 1_250,
            skew: 1.0,
            seed: 0,
        }
    }
}

/// A generated paper workload: the insert stream plus exact ground
/// truth.
#[derive(Debug, Clone)]
pub struct PaperWorkload {
    config: WorkloadConfig,
    /// Exact distinct-source frequency of destination rank `i`
    /// (destination address = `DEST_BASE + i`).
    frequencies: Vec<u64>,
    updates: Vec<FlowUpdate>,
}

/// Destination addresses start here so they are disjoint from generated
/// source addresses in examples that mix roles.
pub const DEST_BASE: u32 = 0x0a00_0000;

use dcs_hash::mix::scramble_u32;

impl PaperWorkload {
    /// Generates the workload: draws destinations from `Zipf(d, z)`,
    /// pairs each with a fresh source, and shuffles the stream order.
    ///
    /// # Panics
    ///
    /// Panics if `distinct_pairs` is 0 or `num_destinations` is 0.
    pub fn generate(config: WorkloadConfig) -> Self {
        assert!(config.distinct_pairs > 0, "need at least one pair");
        assert!(config.num_destinations > 0, "need at least one destination");
        let zipf = Zipf::new(config.num_destinations as usize, config.skew);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut frequencies = vec![0u64; config.num_destinations as usize];
        let mut updates = Vec::with_capacity(config.distinct_pairs as usize);
        for _ in 0..config.distinct_pairs {
            let rank = zipf.sample(&mut rng);
            let source_index = frequencies[rank] as u32;
            frequencies[rank] += 1;
            // Fresh source for this destination: scrambled counter.
            let source = SourceAddr(scramble_u32(source_index));
            let dest = DestAddr(DEST_BASE + rank as u32);
            updates.push(FlowUpdate::insert(source, dest));
        }
        updates.shuffle(&mut rng);
        Self {
            config,
            frequencies,
            updates,
        }
    }

    /// The generating configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// The insert stream, in shuffled order.
    pub fn updates(&self) -> &[FlowUpdate] {
        &self.updates
    }

    /// Consumes the workload, returning the update stream.
    pub fn into_updates(self) -> Vec<FlowUpdate> {
        self.updates
    }

    /// Exact distinct-source frequency of destination rank `rank`.
    pub fn frequency_of_rank(&self, rank: usize) -> u64 {
        self.frequencies.get(rank).copied().unwrap_or(0)
    }

    /// The destination address of rank `rank`.
    pub fn dest_of_rank(&self, rank: usize) -> DestAddr {
        DestAddr(DEST_BASE + rank as u32)
    }

    /// The exact top-`k` destinations `(address, frequency)`, descending
    /// frequency, ties broken by the larger address (matching the
    /// sketches' deterministic ordering).
    pub fn exact_top_k(&self, k: usize) -> Vec<(u32, u64)> {
        let mut ranked: Vec<(u64, u32)> = self
            .frequencies
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f > 0)
            .map(|(rank, &f)| (f, DEST_BASE + rank as u32))
            .collect();
        ranked.sort_unstable_by(|a, b| b.cmp(a));
        ranked.truncate(k);
        ranked.into_iter().map(|(f, g)| (g, f)).collect()
    }

    /// Total number of distinct pairs (`U`).
    pub fn distinct_pairs(&self) -> u64 {
        self.config.distinct_pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small() -> WorkloadConfig {
        WorkloadConfig {
            distinct_pairs: 10_000,
            num_destinations: 100,
            skew: 1.0,
            seed: 7,
        }
    }

    #[test]
    fn generates_exactly_u_distinct_pairs() {
        let w = PaperWorkload::generate(small());
        assert_eq!(w.updates().len(), 10_000);
        let distinct: HashSet<u64> = w.updates().iter().map(|u| u.key.packed()).collect();
        assert_eq!(distinct.len(), 10_000, "pairs must be distinct");
        assert_eq!(w.distinct_pairs(), 10_000);
    }

    #[test]
    fn frequencies_sum_to_u_and_match_stream() {
        let w = PaperWorkload::generate(small());
        let total: u64 = (0..100).map(|r| w.frequency_of_rank(r)).sum();
        assert_eq!(total, 10_000);
        // Recount from the stream itself.
        let mut counted = vec![0u64; 100];
        for u in w.updates() {
            counted[(u.key.dest().0 - DEST_BASE) as usize] += 1;
        }
        for (rank, &count) in counted.iter().enumerate() {
            assert_eq!(count, w.frequency_of_rank(rank), "rank {rank}");
        }
    }

    #[test]
    fn rank_zero_is_heaviest_under_skew() {
        let w = PaperWorkload::generate(WorkloadConfig {
            skew: 2.0,
            ..small()
        });
        let f0 = w.frequency_of_rank(0);
        for rank in 1..100 {
            assert!(f0 >= w.frequency_of_rank(rank));
        }
        // z = 2: rank 0 holds ~1/ζ(2) ≈ 61% of mass.
        assert!(f0 > 5_000, "f0 = {f0}");
    }

    #[test]
    fn exact_top_k_is_sorted_and_consistent() {
        let w = PaperWorkload::generate(small());
        let top = w.exact_top_k(10);
        assert_eq!(top.len(), 10);
        for pair in top.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        assert_eq!(top[0].0, w.dest_of_rank(0).0);
        assert_eq!(top[0].1, w.frequency_of_rank(0));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = PaperWorkload::generate(small());
        let b = PaperWorkload::generate(small());
        assert_eq!(a.updates(), b.updates());
        let c = PaperWorkload::generate(WorkloadConfig { seed: 8, ..small() });
        assert_ne!(a.updates(), c.updates());
    }

    #[test]
    fn scramble_is_bijective_on_sample() {
        let out: HashSet<u32> = (0..100_000u32).map(scramble_u32).collect();
        assert_eq!(out.len(), 100_000);
    }

    #[test]
    fn defaults_have_paper_parameters() {
        let p = WorkloadConfig::paper_default();
        assert_eq!(p.distinct_pairs, 8_000_000);
        assert_eq!(p.num_destinations, 50_000);
        let s = WorkloadConfig::scaled_default();
        assert_eq!(
            p.distinct_pairs / u64::from(p.num_destinations),
            s.distinct_pairs / u64::from(s.num_destinations)
        );
    }

    #[test]
    #[should_panic(expected = "destination")]
    fn zero_destinations_panics() {
        let _ = PaperWorkload::generate(WorkloadConfig {
            num_destinations: 0,
            ..small()
        });
    }
}
