//! Attack-scenario timelines: SYN floods, flash crowds, port scans and
//! legitimate background traffic, composed into one interleaved
//! flow-update stream with exact ground truth.
//!
//! The semantics follow the paper's SYN-flood framing: a connection
//! attempt is a `+1` update; a *completed* handshake (client ACK) is a
//! subsequent `-1` for the same pair. Spoofed attack sources never
//! complete, so they accumulate; flash-crowd clients are legitimate and
//! (mostly) complete, so they cancel out.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use dcs_core::{DestAddr, FlowUpdate, SourceAddr};

/// One traffic component of a scenario.
#[derive(Debug, Clone, PartialEq)]
enum Component {
    /// Legitimate flows: distinct sources, each completing its handshake
    /// with probability `completion_rate`.
    Background {
        flows: u32,
        destinations: u32,
        completion_rate: f64,
    },
    /// A SYN flood: `sources` distinct spoofed sources at one victim,
    /// none completing.
    SynFlood { victim: u32, sources: u32 },
    /// A flash crowd: `clients` distinct legitimate sources at one
    /// destination, completing with probability `completion_rate`
    /// (high, but stragglers are realistic).
    FlashCrowd {
        dest: u32,
        clients: u32,
        completion_rate: f64,
    },
    /// A port scan: one source probing `targets` distinct destinations,
    /// never completing.
    PortScan { scanner: u32, targets: u32 },
}

/// Builder for composite attack scenarios.
///
/// # Examples
///
/// ```
/// use dcs_streamgen::ScenarioBuilder;
///
/// let scenario = ScenarioBuilder::new(42)
///     .background(1_000, 50, 0.9)
///     .syn_flood(0x0a000001, 500)
///     .flash_crowd(0x0a000002, 800, 0.95)
///     .build();
/// // The flood's victim has ~500 half-open flows; the flash crowd ~40.
/// assert!(scenario.half_open(0x0a000001) > scenario.half_open(0x0a000002));
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    seed: u64,
    source_base: u32,
    components: Vec<Component>,
}

impl ScenarioBuilder {
    /// Creates an empty scenario with the RNG `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            source_base: 0x6400_0000,
            components: Vec::new(),
        }
    }

    /// Moves the generated-source address space to start at `base`.
    ///
    /// Scenarios meant to be *combined* (e.g., one per point of
    /// presence) must use disjoint bases, otherwise their generated
    /// sources coincide and distinct-count semantics deduplicate them.
    pub fn source_base(mut self, base: u32) -> Self {
        self.source_base = base;
        self
    }

    /// Adds legitimate background traffic: `flows` distinct
    /// source-destination flows spread uniformly over `destinations`
    /// destinations, each completing (insert followed by delete) with
    /// probability `completion_rate`.
    pub fn background(mut self, flows: u32, destinations: u32, completion_rate: f64) -> Self {
        self.components.push(Component::Background {
            flows,
            destinations,
            completion_rate,
        });
        self
    }

    /// Adds a SYN flood of `sources` distinct spoofed sources against
    /// `victim`; no handshake ever completes.
    pub fn syn_flood(mut self, victim: u32, sources: u32) -> Self {
        self.components
            .push(Component::SynFlood { victim, sources });
        self
    }

    /// Adds a flash crowd of `clients` distinct legitimate sources at
    /// `dest`, completing with probability `completion_rate`.
    pub fn flash_crowd(mut self, dest: u32, clients: u32, completion_rate: f64) -> Self {
        self.components.push(Component::FlashCrowd {
            dest,
            clients,
            completion_rate,
        });
        self
    }

    /// Adds a port scan from `scanner` against `targets` distinct
    /// destinations.
    pub fn port_scan(mut self, scanner: u32, targets: u32) -> Self {
        self.components
            .push(Component::PortScan { scanner, targets });
        self
    }

    /// Generates the interleaved update stream and ground truth.
    ///
    /// Completed flows emit their `-1` *after* their `+1` (positions are
    /// randomized but order within a pair is preserved), so the stream
    /// is well-formed for sketch consumption at every prefix.
    pub fn build(self) -> Scenario {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // (key-insert, completes) staged flows.
        let mut flows: Vec<(FlowUpdate, bool)> = Vec::new();
        let mut source_counter = self.source_base; // generated-source space
        for component in &self.components {
            match *component {
                Component::Background {
                    flows: n,
                    destinations,
                    completion_rate,
                } => {
                    for i in 0..n {
                        let dest = DestAddr(0x0b00_0000 + (i % destinations.max(1)));
                        let source = SourceAddr(source_counter);
                        source_counter = source_counter.wrapping_add(1);
                        flows.push((
                            FlowUpdate::insert(source, dest),
                            rng.gen_bool(completion_rate),
                        ));
                    }
                }
                Component::SynFlood { victim, sources } => {
                    for _ in 0..sources {
                        let source = SourceAddr(source_counter);
                        source_counter = source_counter.wrapping_add(1);
                        flows.push((FlowUpdate::insert(source, DestAddr(victim)), false));
                    }
                }
                Component::FlashCrowd {
                    dest,
                    clients,
                    completion_rate,
                } => {
                    for _ in 0..clients {
                        let source = SourceAddr(source_counter);
                        source_counter = source_counter.wrapping_add(1);
                        flows.push((
                            FlowUpdate::insert(source, DestAddr(dest)),
                            rng.gen_bool(completion_rate),
                        ));
                    }
                }
                Component::PortScan { scanner, targets } => {
                    for t in 0..targets {
                        flows.push((
                            FlowUpdate::insert(SourceAddr(scanner), DestAddr(0x0c00_0000 + t)),
                            false,
                        ));
                    }
                }
            }
        }
        // Interleave: shuffle inserts; completions are appended at a
        // random later position by a second shuffled pass.
        flows.shuffle(&mut rng);
        let mut updates: Vec<FlowUpdate> = Vec::with_capacity(flows.len() * 2);
        let mut pending_deletes: Vec<(usize, FlowUpdate)> = Vec::new();
        for (i, (insert, completes)) in flows.iter().enumerate() {
            updates.push(*insert);
            if *completes {
                // Schedule the delete at a random position after i.
                let at = rng.gen_range(i..flows.len());
                pending_deletes.push((at, insert.inverted()));
            }
        }
        // Stable merge of deletes after their scheduled insert index.
        pending_deletes.sort_by_key(|&(at, _)| at);
        let mut merged = Vec::with_capacity(updates.len() + pending_deletes.len());
        let mut delete_iter = pending_deletes.into_iter().peekable();
        for (i, update) in updates.into_iter().enumerate() {
            merged.push(update);
            while let Some((_, delete)) = delete_iter.next_if(|&(at, _)| at == i) {
                merged.push(delete);
            }
        }
        merged.extend(delete_iter.map(|(_, d)| d));

        // Ground truth: net half-open count per destination and per
        // source (for the port-scan orientation).
        let mut half_open_by_dest = std::collections::HashMap::new();
        let mut half_open_by_source = std::collections::HashMap::new();
        for (insert, completes) in &flows {
            if !completes {
                *half_open_by_dest.entry(insert.key.dest().0).or_insert(0u64) += 1;
                *half_open_by_source
                    .entry(insert.key.source().0)
                    .or_insert(0u64) += 1;
            }
        }
        Scenario {
            updates: merged,
            half_open_by_dest,
            half_open_by_source,
        }
    }
}

/// A generated scenario: the update stream plus exact half-open ground
/// truth.
#[derive(Debug, Clone)]
pub struct Scenario {
    updates: Vec<FlowUpdate>,
    half_open_by_dest: std::collections::HashMap<u32, u64>,
    half_open_by_source: std::collections::HashMap<u32, u64>,
}

impl Scenario {
    /// The interleaved update stream (well-formed at every prefix).
    pub fn updates(&self) -> &[FlowUpdate] {
        &self.updates
    }

    /// Consumes the scenario, returning the update stream.
    pub fn into_updates(self) -> Vec<FlowUpdate> {
        self.updates
    }

    /// The exact number of half-open (never-completed) flows at `dest`
    /// once the whole stream has been consumed.
    pub fn half_open(&self, dest: u32) -> u64 {
        self.half_open_by_dest.get(&dest).copied().unwrap_or(0)
    }

    /// The exact number of half-open flows originated by `source`.
    pub fn half_open_by_source(&self, source: u32) -> u64 {
        self.half_open_by_source.get(&source).copied().unwrap_or(0)
    }

    /// The exact top-`k` destinations by final half-open count.
    pub fn exact_top_k(&self, k: usize) -> Vec<(u32, u64)> {
        let mut ranked: Vec<(u64, u32)> = self
            .half_open_by_dest
            .iter()
            .map(|(&d, &f)| (f, d))
            .collect();
        ranked.sort_unstable_by(|a, b| b.cmp(a));
        ranked.truncate(k);
        ranked.into_iter().map(|(f, d)| (d, f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn empty_scenario_is_empty() {
        let s = ScenarioBuilder::new(1).build();
        assert!(s.updates().is_empty());
        assert_eq!(s.half_open(1), 0);
        assert!(s.exact_top_k(5).is_empty());
    }

    #[test]
    fn stream_is_well_formed_at_every_prefix() {
        let s = ScenarioBuilder::new(2)
            .background(500, 20, 0.8)
            .syn_flood(0x0a000001, 200)
            .flash_crowd(0x0a000002, 300, 0.95)
            .port_scan(0x01020304, 100)
            .build();
        let mut net: HashMap<u64, i64> = HashMap::new();
        for u in s.updates() {
            let c = net.entry(u.key.packed()).or_insert(0);
            *c += u.delta.signum();
            assert!(*c >= 0, "prefix went negative for {:?}", u.key);
        }
    }

    #[test]
    fn syn_flood_victim_has_exact_half_open_count() {
        let s = ScenarioBuilder::new(3).syn_flood(0x0a000001, 250).build();
        assert_eq!(s.half_open(0x0a000001), 250);
        assert_eq!(s.updates().len(), 250); // no deletes
        assert_eq!(s.exact_top_k(1), vec![(0x0a000001, 250)]);
    }

    #[test]
    fn flash_crowd_mostly_cancels() {
        let s = ScenarioBuilder::new(4)
            .flash_crowd(0x0a000002, 1000, 0.9)
            .build();
        let residual = s.half_open(0x0a000002);
        // ~10% stragglers.
        assert!((50..200).contains(&residual), "residual = {residual}");
        // Stream contains inserts + deletes.
        assert!(s.updates().len() > 1800);
    }

    #[test]
    fn ground_truth_matches_stream_replay() {
        let s = ScenarioBuilder::new(5)
            .background(300, 10, 0.7)
            .syn_flood(0x0a000009, 150)
            .build();
        let mut net: HashMap<u64, i64> = HashMap::new();
        for u in s.updates() {
            *net.entry(u.key.packed()).or_insert(0) += u.delta.signum();
        }
        let mut by_dest: HashMap<u32, u64> = HashMap::new();
        for (&packed, &c) in &net {
            if c > 0 {
                *by_dest
                    .entry(dcs_core::FlowKey::from_packed(packed).dest().0)
                    .or_insert(0) += 1;
            }
        }
        for (&dest, &count) in &by_dest {
            assert_eq!(s.half_open(dest), count, "dest {dest:#x}");
        }
        assert_eq!(s.half_open(0x0a000009), 150);
    }

    #[test]
    fn port_scan_is_tracked_by_source() {
        let s = ScenarioBuilder::new(6).port_scan(0xdead, 77).build();
        assert_eq!(s.half_open_by_source(0xdead), 77);
        assert_eq!(s.half_open_by_source(0xbeef), 0);
    }

    #[test]
    fn scenarios_are_deterministic_per_seed() {
        let a = ScenarioBuilder::new(7).background(100, 5, 0.5).build();
        let b = ScenarioBuilder::new(7).background(100, 5, 0.5).build();
        assert_eq!(a.updates(), b.updates());
        let c = ScenarioBuilder::new(8).background(100, 5, 0.5).build();
        assert_ne!(a.updates(), c.updates());
    }

    #[test]
    fn sources_are_distinct_across_components() {
        let s = ScenarioBuilder::new(9)
            .syn_flood(1, 100)
            .flash_crowd(2, 100, 1.0)
            .build();
        let sources: std::collections::HashSet<u32> =
            s.updates().iter().map(|u| u.key.source().0).collect();
        assert_eq!(sources.len(), 200);
    }
}
