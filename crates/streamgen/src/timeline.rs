//! Time-annotated workload phases: ramping floods, low-rate pulse
//! attacks, steady background — the inputs for change-detection and
//! epoch-differencing experiments.
//!
//! Where [`crate::scenario`] produces one unordered batch,
//! a [`Timeline`] attaches a tick to every update and composes *phases*
//! (ramp-up, plateau, pulses in the Kuzmanovic–Knightly low-rate style
//! \[24\]), so detectors that operate on intervals — CUSUM over SYN−FIN
//! counts, epoch-differenced sketches — have something meaningful to
//! chew on. Exact per-interval half-open series are provided as ground
//! truth.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dcs_core::{Delta, DestAddr, FlowUpdate, SourceAddr};

/// A flow update stamped with its arrival tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedUpdate {
    /// Arrival time, in abstract ticks.
    pub at: u64,
    /// The flow update.
    pub update: FlowUpdate,
}

/// Builder for phased, time-annotated workloads.
///
/// # Examples
///
/// ```
/// use dcs_streamgen::timeline::TimelineBuilder;
///
/// let timeline = TimelineBuilder::new(7)
///     .steady_background(100, 20, 5, 0.9) // 100 ticks of calm
///     .ramp_flood(0x0a000001, 50, 40)     // flood ramps to 40 src/tick
///     .build();
/// assert!(!timeline.updates().is_empty());
/// ```
#[derive(Debug)]
pub struct TimelineBuilder {
    rng: StdRng,
    clock: u64,
    next_source: u32,
    updates: Vec<TimedUpdate>,
}

impl TimelineBuilder {
    /// Creates an empty timeline with an RNG `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            clock: 0,
            next_source: 0x7100_0000,
            updates: Vec::new(),
        }
    }

    fn fresh_source(&mut self) -> SourceAddr {
        let s = SourceAddr(self.next_source);
        self.next_source = self.next_source.wrapping_add(1);
        s
    }

    /// Current end-of-timeline tick.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Adds `ticks` of steady legitimate traffic: each tick,
    /// `flows_per_tick` fresh flows spread over `destinations`
    /// destinations, completing within a few ticks with probability
    /// `completion_rate`.
    pub fn steady_background(
        mut self,
        ticks: u64,
        flows_per_tick: u32,
        destinations: u32,
        completion_rate: f64,
    ) -> Self {
        for _ in 0..ticks {
            for _ in 0..flows_per_tick {
                let source = self.fresh_source();
                let dest = DestAddr(0x0b00_0000 + self.rng.gen_range(0..destinations.max(1)));
                let at = self.clock;
                self.updates.push(TimedUpdate {
                    at,
                    update: FlowUpdate::insert(source, dest),
                });
                if self.rng.gen_bool(completion_rate) {
                    let lag = self.rng.gen_range(1..4);
                    self.updates.push(TimedUpdate {
                        at: at + lag,
                        update: FlowUpdate::delete(source, dest),
                    });
                }
            }
            self.clock += 1;
        }
        self
    }

    /// Adds a flood against `victim` ramping linearly from 0 to
    /// `peak_sources_per_tick` over `ticks` ticks (spoofed sources,
    /// never completing).
    pub fn ramp_flood(mut self, victim: u32, ticks: u64, peak_sources_per_tick: u32) -> Self {
        for t in 0..ticks {
            let rate = if ticks <= 1 {
                peak_sources_per_tick
            } else {
                (u64::from(peak_sources_per_tick) * t / (ticks - 1)) as u32
            };
            for _ in 0..rate {
                let source = self.fresh_source();
                let at = self.clock;
                self.updates.push(TimedUpdate {
                    at,
                    update: FlowUpdate::insert(source, DestAddr(victim)),
                });
            }
            self.clock += 1;
        }
        self
    }

    /// Adds a sustained flood at a flat `sources_per_tick` for `ticks`.
    pub fn plateau_flood(mut self, victim: u32, ticks: u64, sources_per_tick: u32) -> Self {
        for _ in 0..ticks {
            for _ in 0..sources_per_tick {
                let source = self.fresh_source();
                let at = self.clock;
                self.updates.push(TimedUpdate {
                    at,
                    update: FlowUpdate::insert(source, DestAddr(victim)),
                });
            }
            self.clock += 1;
        }
        self
    }

    /// Adds a low-rate *pulse* attack (Kuzmanovic–Knightly style): for
    /// `periods` periods of `period_ticks` each, a burst of
    /// `burst_sources` hits in the first `burst_ticks` ticks, then
    /// silence; burst flows are torn down (RST-like `-1`) at the end of
    /// each period, keeping the long-run average low.
    pub fn pulse_attack(
        mut self,
        victim: u32,
        periods: u32,
        period_ticks: u64,
        burst_ticks: u64,
        burst_sources: u32,
    ) -> Self {
        for _ in 0..periods {
            let period_start = self.clock;
            let mut burst: Vec<SourceAddr> = Vec::with_capacity(burst_sources as usize);
            for _ in 0..burst_sources {
                let source = self.fresh_source();
                let at = period_start + self.rng.gen_range(0..burst_ticks.max(1));
                self.updates.push(TimedUpdate {
                    at,
                    update: FlowUpdate::insert(source, DestAddr(victim)),
                });
                burst.push(source);
            }
            // Teardown at period end.
            for source in burst {
                self.updates.push(TimedUpdate {
                    at: period_start + period_ticks - 1,
                    update: FlowUpdate::delete(source, DestAddr(victim)),
                });
            }
            self.clock += period_ticks;
        }
        self
    }

    /// Inserts `ticks` of silence.
    pub fn quiet(mut self, ticks: u64) -> Self {
        self.clock += ticks;
        self
    }

    /// Finalizes: sorts by tick (stable, preserving per-flow +1/−1
    /// order) and returns the timeline.
    pub fn build(mut self) -> Timeline {
        self.updates.sort_by_key(|t| t.at);
        Timeline {
            updates: self.updates,
            end: self.clock,
        }
    }
}

/// A finished time-annotated workload.
#[derive(Debug, Clone)]
pub struct Timeline {
    updates: Vec<TimedUpdate>,
    end: u64,
}

impl Timeline {
    /// The timed updates, sorted by tick.
    pub fn updates(&self) -> &[TimedUpdate] {
        &self.updates
    }

    /// The timeline's end tick.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Splits the updates into consecutive intervals of `interval`
    /// ticks, returning the updates per interval.
    pub fn intervals(&self, interval: u64) -> Vec<Vec<FlowUpdate>> {
        assert!(interval > 0, "interval must be positive");
        let buckets = self.end.max(1).div_ceil(interval);
        let mut out: Vec<Vec<FlowUpdate>> = vec![Vec::new(); buckets as usize];
        for t in &self.updates {
            let slot = (t.at / interval).min(buckets - 1) as usize;
            out[slot].push(t.update);
        }
        out
    }

    /// Exact half-open count of `dest` at the end of each `interval`
    /// (inclusive prefix semantics).
    pub fn half_open_series(&self, dest: u32, interval: u64) -> Vec<i64> {
        let mut series = Vec::new();
        let mut net = 0i64;
        for chunk in self.intervals(interval) {
            for u in chunk {
                if u.update_dest() == dest {
                    net += u.delta.signum();
                }
            }
            series.push(net);
        }
        series
    }

    /// Exact half-open count of `dest` after the whole timeline.
    pub fn final_half_open(&self, dest: u32) -> i64 {
        self.updates
            .iter()
            .filter(|t| t.update.update_dest() == dest)
            .map(|t| t.update.delta.signum())
            .sum()
    }

    /// Per-interval (SYN count, FIN/teardown count) pairs — the input a
    /// SYN−FIN difference detector sees.
    pub fn syn_fin_series(&self, interval: u64) -> Vec<(u64, u64)> {
        self.intervals(interval)
            .into_iter()
            .map(|chunk| {
                let syns = chunk.iter().filter(|u| u.delta == Delta::Insert).count() as u64;
                let fins = chunk.iter().filter(|u| u.delta == Delta::Delete).count() as u64;
                (syns, fins)
            })
            .collect()
    }
}

/// Small helper: the destination address of an update.
trait UpdateDest {
    fn update_dest(&self) -> u32;
}

impl UpdateDest for FlowUpdate {
    fn update_dest(&self) -> u32 {
        self.key.dest().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn updates_are_time_sorted() {
        let tl = TimelineBuilder::new(1)
            .steady_background(50, 10, 5, 0.8)
            .ramp_flood(1, 20, 30)
            .build();
        for w in tl.updates().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert_eq!(tl.end(), 70);
    }

    #[test]
    fn ramp_flood_grows_over_time() {
        let victim = 0x0a00_0001;
        let tl = TimelineBuilder::new(2).ramp_flood(victim, 100, 50).build();
        let series = tl.half_open_series(victim, 10);
        assert_eq!(series.len(), 10);
        // Monotone growth with an accelerating slope.
        for w in series.windows(2) {
            assert!(w[1] >= w[0]);
        }
        let first_half = series[4];
        let total = *series.last().unwrap();
        assert!(total > first_half * 2, "series = {series:?}");
        assert_eq!(tl.final_half_open(victim), total);
    }

    #[test]
    fn pulse_attack_has_low_average_but_high_peaks() {
        let victim = 0x0a00_0002;
        let tl = TimelineBuilder::new(3)
            .pulse_attack(victim, 10, 100, 5, 200)
            .build();
        // At the end of every period the burst is torn down.
        assert_eq!(tl.final_half_open(victim), 0);
        // But within a period the half-open count peaks high.
        let fine = tl.half_open_series(victim, 10);
        let peak = fine.iter().copied().max().unwrap();
        assert!(peak >= 150, "peak = {peak}");
        // And at period boundaries it returns to ~0.
        let coarse = tl.half_open_series(victim, 100);
        assert!(coarse.iter().all(|&v| v == 0), "coarse = {coarse:?}");
    }

    #[test]
    fn background_mostly_cancels() {
        let tl = TimelineBuilder::new(4)
            .steady_background(100, 20, 5, 0.95)
            .quiet(10)
            .build();
        let total_net: i64 = (0..5).map(|d| tl.final_half_open(0x0b00_0000 + d)).sum();
        // 2000 flows, ~5% stragglers.
        assert!((20..300).contains(&total_net), "net = {total_net}");
    }

    #[test]
    fn syn_fin_series_reflects_attack_phases() {
        let victim = 0x0a00_0003;
        let tl = TimelineBuilder::new(5)
            .steady_background(50, 20, 5, 1.0)
            .plateau_flood(victim, 50, 100)
            .build();
        let series = tl.syn_fin_series(10);
        assert_eq!(series.len(), 10);
        // Calm phase: SYNs ≈ FINs. Attack phase: SYNs ≫ FINs.
        let (calm_syn, calm_fin) = series[2];
        assert!(calm_syn as i64 - calm_fin as i64 <= 60);
        let (attack_syn, attack_fin) = series[7];
        assert!(attack_syn > attack_fin + 500, "{series:?}");
    }

    #[test]
    fn intervals_partition_all_updates() {
        let tl = TimelineBuilder::new(6)
            .steady_background(30, 10, 3, 0.5)
            .build();
        let total: usize = tl.intervals(7).iter().map(Vec::len).sum();
        assert_eq!(total, tl.updates().len());
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_panics() {
        let tl = TimelineBuilder::new(7).quiet(5).build();
        let _ = tl.intervals(0);
    }

    #[test]
    fn streams_are_well_formed_per_prefix() {
        let tl = TimelineBuilder::new(8)
            .steady_background(40, 15, 4, 0.9)
            .pulse_attack(9, 3, 50, 5, 50)
            .build();
        let mut net: std::collections::HashMap<u64, i64> = std::collections::HashMap::new();
        for t in tl.updates() {
            let c = net.entry(t.update.key.packed()).or_insert(0);
            *c += t.update.delta.signum();
            assert!(*c >= 0, "prefix negative at tick {}", t.at);
        }
    }
}
