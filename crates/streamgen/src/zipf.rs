//! Zipfian rank sampling.
//!
//! The paper's workloads spread `U` distinct sources over `d`
//! destinations with Zipfian skew `z ∈ [1.0, 2.5]`: rank `i`
//! (1-indexed) receives probability proportional to `i^-z`. This module
//! samples ranks by inverse-CDF lookup over a precomputed table —
//! `O(log d)` per draw, exact for any finite `d`.

use rand::Rng;

/// A Zipfian distribution over ranks `0..d` (rank 0 is the heaviest).
///
/// # Examples
///
/// ```
/// use dcs_streamgen::Zipf;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let zipf = Zipf::new(1000, 1.5);
/// let mut rng = StdRng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    /// `cdf[i]` = P(rank ≤ i); last entry is 1.0.
    cdf: Vec<f64>,
    exponent: f64,
}

impl Zipf {
    /// Creates a Zipfian distribution over `d` ranks with exponent
    /// `z ≥ 0` (`z = 0` is uniform).
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero or `z` is negative or non-finite.
    pub fn new(d: usize, z: f64) -> Self {
        assert!(d > 0, "need at least one rank");
        assert!(
            z >= 0.0 && z.is_finite(),
            "exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(d);
        let mut acc = 0.0;
        for i in 0..d {
            acc += ((i + 1) as f64).powf(-z);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point drift at the top end (the entry
        // exists: d > 0 is asserted above).
        if let Some(top) = cdf.last_mut() {
            *top = 1.0;
        }
        Self { cdf, exponent: z }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is degenerate (single rank).
    pub fn is_empty(&self) -> bool {
        false // d > 0 is enforced at construction
    }

    /// The exponent `z`.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// The probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank >= self.cdf.len() {
            return 0.0;
        }
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }

    /// Samples a rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// The expected number of occurrences of each rank among `n` draws.
    pub fn expected_counts(&self, n: u64) -> Vec<f64> {
        (0..self.len()).map(|i| self.pmf(i) * n as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let zipf = Zipf::new(100, 1.2);
        let total: f64 = (0..100).map(|i| zipf.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(zipf.pmf(100), 0.0);
        assert_eq!(zipf.len(), 100);
        assert!(!zipf.is_empty());
        assert_eq!(zipf.exponent(), 1.2);
    }

    #[test]
    fn uniform_when_z_is_zero() {
        let zipf = Zipf::new(10, 0.0);
        for i in 0..10 {
            assert!((zipf.pmf(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn heavier_skew_concentrates_mass() {
        let mild = Zipf::new(1000, 1.0);
        let extreme = Zipf::new(1000, 2.5);
        let top5_mild: f64 = (0..5).map(|i| mild.pmf(i)).sum();
        let top5_extreme: f64 = (0..5).map(|i| extreme.pmf(i)).sum();
        assert!(top5_extreme > top5_mild);
        // §6.2: at z = 2.5, >95% of the mass sits in the top-5.
        assert!(top5_extreme > 0.95, "top-5 mass = {top5_extreme}");
    }

    #[test]
    fn sample_frequencies_match_pmf() {
        let zipf = Zipf::new(50, 1.5);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 200_000;
        let mut counts = vec![0u64; 50];
        for _ in 0..n {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for (rank, &count) in counts.iter().enumerate().take(5) {
            let expected = zipf.pmf(rank) * n as f64;
            let got = count as f64;
            assert!(
                (got - expected).abs() < expected * 0.05,
                "rank {rank}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn expected_counts_scale_with_n() {
        let zipf = Zipf::new(10, 1.0);
        let counts = zipf.expected_counts(1000);
        assert_eq!(counts.len(), 10);
        assert!((counts.iter().sum::<f64>() - 1000.0).abs() < 1e-6);
        assert!(counts[0] > counts[9]);
    }

    #[test]
    fn sample_is_deterministic_for_seed() {
        let zipf = Zipf::new(100, 1.0);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..100).map(|_| zipf.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..100).map(|_| zipf.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn negative_exponent_panics() {
        let _ = Zipf::new(10, -1.0);
    }
}
