//! # dcs-streamgen — synthetic flow-update streams
//!
//! The workload side of the reproduction. The paper's evaluation (§6.1)
//! drives its sketches with synthetic streams "characterized by three
//! key parameters: the total number of distinct source-destination
//! IP-address pairs `U`, the number of distinct destinations `d`, and
//! the Zipfian skew parameter `z`". This crate generates exactly those
//! streams ([`workload`]), plus richer attack/flash-crowd/port-scan
//! timelines for the end-to-end examples ([`scenario`]), and a compact
//! binary trace format for replay ([`trace`]).
//!
//! All generation is deterministic in an explicit seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scenario;
pub mod timeline;
pub mod trace;
pub mod workload;
pub mod zipf;

pub use scenario::{Scenario, ScenarioBuilder};
pub use timeline::{TimedUpdate, Timeline, TimelineBuilder};
pub use trace::{decode_timed_trace, decode_trace, encode_timed_trace, encode_trace, TraceError};
pub use workload::{PaperWorkload, WorkloadConfig};
pub use zipf::Zipf;
