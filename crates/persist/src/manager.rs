//! Atomic checkpoint files on disk.
//!
//! [`CheckpointManager`] owns one checkpoint path and guarantees that
//! the file at that path is always a *complete* checkpoint: saves go
//! through a temporary sibling file, are fsynced, and are then renamed
//! into place. A crash at any instant leaves either the previous
//! complete checkpoint or the new complete checkpoint — never a torn
//! mixture (the codec's CRC framing catches the pathological cases a
//! filesystem might still produce).

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::codec::{decode, encode, Checkpoint};
use crate::error::PersistError;

/// Writes and reads checkpoints at a fixed path with atomic-rename
/// semantics.
#[derive(Debug)]
pub struct CheckpointManager {
    path: PathBuf,
    saves: u64,
    bytes_last: u64,
    bytes_total: u64,
}

impl CheckpointManager {
    /// Creates a manager for the checkpoint file at `path`. Nothing is
    /// touched on disk until [`save`](Self::save) is called.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            saves: 0,
            bytes_last: 0,
            bytes_total: 0,
        }
    }

    /// The checkpoint path this manager owns.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of successful saves so far.
    pub fn saves(&self) -> u64 {
        self.saves
    }

    /// Size in bytes of the most recent successful save.
    pub fn bytes_last(&self) -> u64 {
        self.bytes_last
    }

    /// Total bytes written across all successful saves.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_total
    }

    /// Atomically replaces the checkpoint file with an encoding of
    /// `checkpoint`, returning the encoded size in bytes.
    ///
    /// The write path is: encode → write to a `.tmp` sibling →
    /// `fsync` the sibling → rename over the target → best-effort
    /// `fsync` of the parent directory. A crash before the rename
    /// leaves the previous checkpoint intact; a crash after it leaves
    /// the new one.
    pub fn save(&mut self, checkpoint: &Checkpoint) -> Result<u64, PersistError> {
        let bytes = encode(checkpoint);
        let tmp = self.temp_path();
        let io_err = |context: &str| {
            let context = context.to_string();
            move |source: std::io::Error| PersistError::Io { context, source }
        };
        {
            let mut file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)
                .map_err(io_err("create temp checkpoint"))?;
            file.write_all(&bytes)
                .map_err(io_err("write temp checkpoint"))?;
            file.sync_all().map_err(io_err("sync temp checkpoint"))?;
        }
        fs::rename(&tmp, &self.path).map_err(io_err("rename checkpoint into place"))?;
        // Durability of the rename itself needs a directory fsync; best
        // effort because not every filesystem/platform allows it.
        if let Some(parent) = self.path.parent() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        let size = u64::try_from(bytes.len()).unwrap_or(u64::MAX);
        self.saves += 1;
        self.bytes_last = size;
        self.bytes_total = self.bytes_total.saturating_add(size);
        Ok(size)
    }

    /// Reads and decodes the checkpoint file, failing if it is absent.
    pub fn load(&self) -> Result<Checkpoint, PersistError> {
        let bytes = fs::read(&self.path).map_err(|source| PersistError::Io {
            context: format!("read checkpoint {:?}", self.path),
            source,
        })?;
        decode(&bytes)
    }

    /// Reads the checkpoint file if it exists: `Ok(None)` when the file
    /// is absent (the normal cold-start case), `Ok(Some(..))` on a
    /// successful restore, and an error for any present-but-unreadable
    /// file.
    pub fn try_load(&self) -> Result<Option<Checkpoint>, PersistError> {
        match fs::read(&self.path) {
            Ok(bytes) => decode(&bytes).map(Some),
            Err(err) if err.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(source) => Err(PersistError::Io {
                context: format!("read checkpoint {:?}", self.path),
                source,
            }),
        }
    }

    fn temp_path(&self) -> PathBuf {
        let mut name = self
            .path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_else(|| "checkpoint".into());
        name.push(".tmp");
        self.path.with_file_name(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_core::{DestAddr, DistinctCountSketch, SketchConfig, SourceAddr};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dcs-persist-test-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_checkpoint(pairs: u32) -> Checkpoint {
        let config = SketchConfig::builder()
            .num_tables(3)
            .buckets_per_table(16)
            .seed(11)
            .build()
            .unwrap();
        let mut sketch = DistinctCountSketch::new(config);
        for s in 0..pairs {
            sketch.insert(SourceAddr(s), DestAddr(s % 3));
        }
        Checkpoint::Sketch(sketch.to_state())
    }

    #[test]
    fn save_then_load_roundtrips() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("monitor.ckpt");
        let mut manager = CheckpointManager::new(&path);
        let checkpoint = sample_checkpoint(100);
        let size = manager.save(&checkpoint).unwrap();
        assert!(size > 0);
        assert_eq!(manager.saves(), 1);
        assert_eq!(manager.bytes_last(), size);
        assert_eq!(manager.load().unwrap(), checkpoint);
        assert_eq!(manager.try_load().unwrap(), Some(checkpoint));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn try_load_of_missing_file_is_none() {
        let dir = temp_dir("missing");
        let manager = CheckpointManager::new(dir.join("never-written.ckpt"));
        assert_eq!(manager.try_load().unwrap(), None);
        assert!(matches!(manager.load(), Err(PersistError::Io { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_replaces_previous_checkpoint_atomically() {
        let dir = temp_dir("replace");
        let path = dir.join("monitor.ckpt");
        let mut manager = CheckpointManager::new(&path);
        let first = sample_checkpoint(10);
        let second = sample_checkpoint(500);
        manager.save(&first).unwrap();
        manager.save(&second).unwrap();
        assert_eq!(manager.saves(), 2);
        assert_eq!(manager.load().unwrap(), second);
        // No stray temp file left behind.
        assert!(!manager.temp_path().exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_file_surfaces_a_typed_error() {
        let dir = temp_dir("corrupt");
        let path = dir.join("monitor.ckpt");
        let mut manager = CheckpointManager::new(&path);
        manager.save(&sample_checkpoint(50)).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(manager.try_load().is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
