//! Typed errors for checkpoint encoding, decoding, and file handling.
//!
//! Every failure mode a checkpoint file can exhibit — missing, cut
//! short, bit-flipped, produced by a future format version, or
//! structurally valid but semantically inconsistent — maps to a
//! distinct [`PersistError`] variant. Decoding never panics: a monitor
//! restoring after a crash must degrade to a fresh start, not crash
//! again on its own recovery file.

use std::error::Error;
use std::fmt;
use std::io;

use dcs_core::SketchError;

/// Errors produced by checkpoint encode/decode and the
/// [`CheckpointManager`](crate::CheckpointManager).
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistError {
    /// An underlying filesystem operation failed.
    Io {
        /// What the manager was doing (e.g. `"write temp checkpoint"`).
        context: String,
        /// The originating I/O error.
        source: io::Error,
    },
    /// The file does not start with the checkpoint magic — it is not a
    /// checkpoint at all (or its first bytes were destroyed).
    BadMagic {
        /// The first eight bytes actually found.
        found: [u8; 8],
    },
    /// The file's format version is not one this build can read.
    UnsupportedVersion {
        /// The version recorded in the file.
        found: u32,
        /// The newest version this build supports.
        supported: u32,
    },
    /// The input ended before a complete structure could be read.
    Truncated {
        /// What was being read when the bytes ran out.
        context: String,
    },
    /// A section's payload does not match its recorded CRC-32 — the
    /// bytes were corrupted after the checkpoint was written.
    ChecksumMismatch {
        /// The four-character tag of the damaged section.
        section: String,
        /// The CRC recorded in the section header.
        expected: u32,
        /// The CRC computed over the payload as read.
        actual: u32,
    },
    /// The bytes parsed but describe an impossible structure (unknown
    /// tags or enum values, inconsistent counts, out-of-range fields).
    Corrupt {
        /// Description of the first inconsistency found.
        context: String,
    },
    /// The decoded state failed the sketch's own structural validation
    /// (see [`dcs_core::SketchError::InvalidState`]) or the restored
    /// configuration was rejected.
    State(SketchError),
    /// A structurally complete document was followed by extra bytes —
    /// evidence of a mangled write, rejected rather than ignored.
    TrailingBytes {
        /// Number of unconsumed bytes after the final section.
        remaining: usize,
    },
    /// The checkpoint is internally consistent but incompatible with
    /// the state it is being restored into (configuration mismatch,
    /// wrong document kind, wrong shard count).
    Incompatible {
        /// Description of the first mismatching attribute.
        reason: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { context, source } => {
                write!(
                    f,
                    "checkpoint I/O failed while trying to {context}: {source}"
                )
            }
            PersistError::BadMagic { found } => {
                write!(f, "not a checkpoint file: bad magic {found:02x?}")
            }
            PersistError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "checkpoint format version {found} is not supported \
                     (this build reads up to version {supported})"
                )
            }
            PersistError::Truncated { context } => {
                write!(f, "checkpoint truncated while reading {context}")
            }
            PersistError::ChecksumMismatch {
                section,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "checkpoint section {section:?} is corrupted: \
                     CRC-32 {actual:#010x} does not match recorded {expected:#010x}"
                )
            }
            PersistError::Corrupt { context } => {
                write!(f, "checkpoint is corrupt: {context}")
            }
            PersistError::State(err) => {
                write!(f, "restored state rejected: {err}")
            }
            PersistError::TrailingBytes { remaining } => {
                write!(
                    f,
                    "checkpoint has {remaining} trailing byte(s) after the final section"
                )
            }
            PersistError::Incompatible { reason } => {
                write!(f, "checkpoint is incompatible with this monitor: {reason}")
            }
        }
    }
}

impl Error for PersistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            PersistError::State(err) => Some(err),
            _ => None,
        }
    }
}

impl From<SketchError> for PersistError {
    fn from(err: SketchError) -> Self {
        PersistError::State(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let truncated = PersistError::Truncated {
            context: "section header".into(),
        };
        assert!(truncated.to_string().contains("section header"));

        let crc = PersistError::ChecksumMismatch {
            section: "LVL".into(),
            expected: 1,
            actual: 2,
        };
        let text = crc.to_string();
        assert!(text.contains("LVL"), "text = {text}");
        assert!(text.contains("corrupted"));

        let version = PersistError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(version.to_string().contains('9'));
    }

    #[test]
    fn error_is_send_sync_and_chains_sources() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<PersistError>();

        let io = PersistError::Io {
            context: "rename".into(),
            source: io::Error::new(io::ErrorKind::PermissionDenied, "denied"),
        };
        assert!(io.source().is_some());
        let magic = PersistError::BadMagic { found: [0; 8] };
        assert!(magic.source().is_none());
    }
}
