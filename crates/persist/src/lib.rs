//! # dcs-persist — crash-safe checkpoint/restore for the sketches
//!
//! A dependency-free persistence layer for `dcs-core` state: a
//! versioned binary codec (magic + format-version header,
//! length-prefixed section framing, CRC-32 per section — see
//! DESIGN.md §12 for the byte-level specification) and an atomic
//! [`CheckpointManager`] (write-temp + fsync + rename).
//!
//! Correctness rides on the sketches' *linearity*: every counter,
//! key-sum, and fingerprint-sum is a sum over the updates seen so far,
//! so a sketch restored from a checkpoint taken at stream position `p`
//! and then fed updates `p..n` is **bit-identical** to a sketch that
//! processed all `n` updates uninterrupted. Recovery is therefore
//! "restore + replay the suffix", with no reconciliation step — the
//! kill-and-resume tests in `tests/checkpoint_resume.rs` pin this down
//! slab by slab.
//!
//! ```
//! use dcs_core::{DestAddr, DistinctCountSketch, SketchConfig, SourceAddr};
//! use dcs_persist::{decode, encode, Checkpoint};
//!
//! let config = SketchConfig::builder().seed(7).build()?;
//! let mut sketch = DistinctCountSketch::new(config);
//! sketch.insert(SourceAddr(1), DestAddr(80));
//!
//! let bytes = encode(&Checkpoint::Sketch(sketch.to_state()));
//! let restored = match decode(&bytes)? {
//!     Checkpoint::Sketch(state) => DistinctCountSketch::from_state(state)?,
//!     _ => unreachable!(),
//! };
//! assert_eq!(restored.to_state(), sketch.to_state());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod manager;
pub mod wire;

pub use codec::{
    decode, encode, section_offsets, Checkpoint, EpochCheckpoint, ShardedCheckpoint,
    FORMAT_VERSION, MAGIC,
};
pub use error::PersistError;
pub use manager::CheckpointManager;
pub use wire::crc32;
