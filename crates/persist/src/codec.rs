//! The versioned binary checkpoint format.
//!
//! A checkpoint file is a *document*:
//!
//! ```text
//! header   := magic[8] version:u32 doc_kind:u8 section_count:u32
//! section  := tag[4] payload_len:u64 payload_crc32:u32 payload[payload_len]
//! document := header section*
//! ```
//!
//! All integers are little-endian. Each section's payload is protected
//! by its own CRC-32 (reflected IEEE), so any single flipped bit in a
//! payload is detected; the header fields are protected structurally
//! (magic, version, known tags, exact length accounting, and a
//! trailing-bytes check). Compound documents nest recursively: an
//! epoch checkpoint's `CUR`/`SNP` sections carry complete embedded
//! documents, so the same encode/decode pair handles every layer.
//!
//! Document kinds and their section sequences (order is fixed and
//! enforced):
//!
//! | kind | sections |
//! |---|---|
//! | 1 `Sketch`   | `CFG` `MET` `LVL`* |
//! | 2 `Tracking` | `SKC`(nested Sketch) `TRM` `TRK`* |
//! | 3 `Epoch`    | `EPO` `CUR`(nested Tracking) `SNP`(nested Sketch)* |
//! | 4 `Sharded`  | `SHD` `SNP`(nested Sketch)* |
//!
//! Version-evolution rules: `FORMAT_VERSION` bumps on any change to
//! the byte layout; readers reject versions newer than they know
//! (`UnsupportedVersion`), and a future reader that keeps
//! compatibility code may accept older ones. Unknown section tags are
//! an error, not skipped — a checkpoint is a complete state capture,
//! so "unknown but ignorable" sections do not exist at this layer.
//! See DESIGN.md §12 for the full specification.

use dcs_core::{
    GroupBy, HashFamily, LevelSlabs, SketchConfig, SketchState, TrackingLevelState, TrackingState,
};

use crate::error::PersistError;
use crate::wire::{crc32, ByteReader, ByteWriter};

/// The first eight bytes of every checkpoint file.
pub const MAGIC: [u8; 8] = *b"DCSCKPT\0";

/// The newest (and currently only) checkpoint format version.
pub const FORMAT_VERSION: u32 = 1;

const KIND_SKETCH: u8 = 1;
const KIND_TRACKING: u8 = 2;
const KIND_EPOCH: u8 = 3;
const KIND_SHARDED: u8 = 4;

const TAG_CFG: [u8; 4] = *b"CFG\0";
const TAG_MET: [u8; 4] = *b"MET\0";
const TAG_LVL: [u8; 4] = *b"LVL\0";
const TAG_SKC: [u8; 4] = *b"SKC\0";
const TAG_TRM: [u8; 4] = *b"TRM\0";
const TAG_TRK: [u8; 4] = *b"TRK\0";
const TAG_EPO: [u8; 4] = *b"EPO\0";
const TAG_CUR: [u8; 4] = *b"CUR\0";
const TAG_SNP: [u8; 4] = *b"SNP\0";
const TAG_SHD: [u8; 4] = *b"SHD\0";

fn tag_name(tag: [u8; 4]) -> String {
    tag.iter()
        .take_while(|&&b| b != 0)
        .map(|&b| char::from(b))
        .collect()
}

/// The persistent state of an epoch manager: the live tracking sketch
/// plus the ring of end-of-epoch snapshots (oldest first) and the ring
/// bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochCheckpoint {
    /// State of the current (live) tracking sketch.
    pub current: TrackingState,
    /// Ring capacity (`max_snapshots` of the manager; always ≥ 1).
    pub max_snapshots: u64,
    /// Total number of `rotate()` calls so far.
    pub epochs_rotated: u64,
    /// Retained end-of-epoch snapshots, oldest first; at most
    /// `max_snapshots` of them.
    pub snapshots: Vec<SketchState>,
}

/// The persistent state of a sharded ingest pipeline: one basic-sketch
/// state per shard (in shard order) plus the distribution cursor.
///
/// Captured only at *ring-drained* positions: the engine flushes every
/// worker ring before snapshotting, so the per-shard states cover
/// everything dispatched and the document never records an in-flight
/// item. Restore re-checks that the shard counts sum exactly to
/// `updates_distributed` (overflow included), because the cursor is
/// what absolute-position routing resumes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedCheckpoint {
    /// Total updates distributed across the shards so far — the
    /// absolute stream position routing resumes from.
    pub updates_distributed: u64,
    /// Per-shard sketch states, in shard index order.
    pub shards: Vec<SketchState>,
}

/// Everything the persistence layer can checkpoint, as one tagged
/// union — the document kind on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Checkpoint {
    /// A basic [`dcs_core::DistinctCountSketch`].
    Sketch(SketchState),
    /// A [`dcs_core::TrackingDcs`] with its tracking structures.
    Tracking(TrackingState),
    /// An epoch manager: live tracking sketch + snapshot ring.
    Epoch(EpochCheckpoint),
    /// A sharded ingest pipeline: per-shard sketches + stream cursor.
    Sharded(ShardedCheckpoint),
}

impl Checkpoint {
    /// A short human-readable name for the document kind.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Checkpoint::Sketch(_) => "sketch",
            Checkpoint::Tracking(_) => "tracking",
            Checkpoint::Epoch(_) => "epoch",
            Checkpoint::Sharded(_) => "sharded",
        }
    }

    fn kind_byte(&self) -> u8 {
        match self {
            Checkpoint::Sketch(_) => KIND_SKETCH,
            Checkpoint::Tracking(_) => KIND_TRACKING,
            Checkpoint::Epoch(_) => KIND_EPOCH,
            Checkpoint::Sharded(_) => KIND_SHARDED,
        }
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn push_section(sections: &mut Vec<([u8; 4], Vec<u8>)>, tag: [u8; 4], payload: Vec<u8>) {
    sections.push((tag, payload));
}

fn config_payload(config: &SketchConfig) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(u64::try_from(config.num_tables()).unwrap_or(u64::MAX));
    w.put_u64(u64::try_from(config.buckets_per_table()).unwrap_or(u64::MAX));
    w.put_u32(config.max_levels());
    w.put_u64(config.seed());
    let (group_tag, bits) = match config.group_by() {
        GroupBy::Destination => (0u8, 0u8),
        GroupBy::Source => (1, 0),
        GroupBy::DestinationPrefix { bits } => (2, bits),
        GroupBy::SourcePrefix { bits } => (3, bits),
    };
    w.put_u8(group_tag);
    w.put_u8(bits);
    w.put_u8(match config.hash_family() {
        HashFamily::MultiplyShift => 0,
        HashFamily::Tabulation => 1,
    });
    w.into_bytes()
}

fn level_payload(slab: &LevelSlabs) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(slab.level);
    w.put_u64(u64::try_from(slab.counts.len()).unwrap_or(u64::MAX));
    for &c in &slab.counts {
        w.put_i64(c);
    }
    w.put_u64(u64::try_from(slab.key_sums.len()).unwrap_or(u64::MAX));
    for &s in &slab.key_sums {
        w.put_u64(s);
    }
    w.put_u64(u64::try_from(slab.fp_sums.len()).unwrap_or(u64::MAX));
    for &s in &slab.fp_sums {
        w.put_u64(s);
    }
    w.into_bytes()
}

fn tracking_level_payload(level: &TrackingLevelState) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(level.level);
    w.put_u64(u64::try_from(level.singletons.len()).unwrap_or(u64::MAX));
    for &(packed, count) in &level.singletons {
        w.put_u64(packed);
        w.put_u32(count);
    }
    w.put_u64(u64::try_from(level.heap_slots.len()).unwrap_or(u64::MAX));
    for &(priority, group) in &level.heap_slots {
        w.put_u64(priority);
        w.put_u32(group);
    }
    w.put_u64(level.heap_underflows);
    w.put_u64(level.heap_overflows);
    w.put_u64(level.heap_adjusts);
    w.into_bytes()
}

fn sketch_sections(state: &SketchState, sections: &mut Vec<([u8; 4], Vec<u8>)>) {
    push_section(sections, TAG_CFG, config_payload(&state.config));
    let mut met = ByteWriter::new();
    met.put_u64(state.updates_processed);
    met.put_i64(state.net_updates);
    push_section(sections, TAG_MET, met.into_bytes());
    for slab in &state.levels {
        push_section(sections, TAG_LVL, level_payload(slab));
    }
}

fn assemble(kind: u8, sections: Vec<([u8; 4], Vec<u8>)>) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_bytes(&MAGIC);
    w.put_u32(FORMAT_VERSION);
    w.put_u8(kind);
    w.put_u32(u32::try_from(sections.len()).unwrap_or(u32::MAX));
    for (tag, payload) in sections {
        w.put_bytes(&tag);
        w.put_u64(u64::try_from(payload.len()).unwrap_or(u64::MAX));
        w.put_u32(crc32(&payload));
        w.put_bytes(&payload);
    }
    w.into_bytes()
}

/// Encodes a checkpoint into its on-disk byte representation.
///
/// Encoding is deterministic: the same state always produces the same
/// bytes (the golden-fixture tests pin this down).
pub fn encode(checkpoint: &Checkpoint) -> Vec<u8> {
    let mut sections = Vec::new();
    match checkpoint {
        Checkpoint::Sketch(state) => sketch_sections(state, &mut sections),
        Checkpoint::Tracking(state) => {
            push_section(
                &mut sections,
                TAG_SKC,
                encode(&Checkpoint::Sketch(state.sketch.clone())),
            );
            let mut trm = ByteWriter::new();
            trm.put_u64(state.untracked_decrements);
            push_section(&mut sections, TAG_TRM, trm.into_bytes());
            for level in &state.levels {
                push_section(&mut sections, TAG_TRK, tracking_level_payload(level));
            }
        }
        Checkpoint::Epoch(epoch) => {
            let mut epo = ByteWriter::new();
            epo.put_u64(epoch.max_snapshots);
            epo.put_u64(epoch.epochs_rotated);
            epo.put_u32(u32::try_from(epoch.snapshots.len()).unwrap_or(u32::MAX));
            push_section(&mut sections, TAG_EPO, epo.into_bytes());
            push_section(
                &mut sections,
                TAG_CUR,
                encode(&Checkpoint::Tracking(epoch.current.clone())),
            );
            for snapshot in &epoch.snapshots {
                push_section(
                    &mut sections,
                    TAG_SNP,
                    encode(&Checkpoint::Sketch(snapshot.clone())),
                );
            }
        }
        Checkpoint::Sharded(sharded) => {
            let mut shd = ByteWriter::new();
            shd.put_u64(sharded.updates_distributed);
            shd.put_u32(u32::try_from(sharded.shards.len()).unwrap_or(u32::MAX));
            push_section(&mut sections, TAG_SHD, shd.into_bytes());
            for shard in &sharded.shards {
                push_section(
                    &mut sections,
                    TAG_SNP,
                    encode(&Checkpoint::Sketch(shard.clone())),
                );
            }
        }
    }
    assemble(checkpoint.kind_byte(), sections)
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Section<'a> {
    tag: [u8; 4],
    payload: &'a [u8],
}

/// Walks the document framing: validates magic and version, reads the
/// section table, and checks every section's CRC. Returns the document
/// kind and the sections in file order.
fn read_document(bytes: &[u8]) -> Result<(u8, Vec<Section<'_>>), PersistError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.take(8, "magic")?;
    if magic != MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(magic);
        return Err(PersistError::BadMagic { found });
    }
    let version = r.u32("format version")?;
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let kind = r.u8("document kind")?;
    let section_count = r.u32("section count")?;
    let mut sections = Vec::new();
    for index in 0..section_count {
        let tag_bytes = r.take(4, "section tag")?;
        let mut tag = [0u8; 4];
        tag.copy_from_slice(tag_bytes);
        let len_raw = r.u64("section length")?;
        let len = usize::try_from(len_raw).map_err(|_| PersistError::Corrupt {
            context: format!("section {index} length {len_raw} does not fit in memory"),
        })?;
        let expected = r.u32("section checksum")?;
        let payload = r.take(len, "section payload")?;
        let actual = crc32(payload);
        if actual != expected {
            return Err(PersistError::ChecksumMismatch {
                section: tag_name(tag),
                expected,
                actual,
            });
        }
        sections.push(Section { tag, payload });
    }
    r.expect_end()?;
    Ok((kind, sections))
}

/// Returns the byte offset of every top-level section boundary in a
/// valid document: the end of the header, then the end of each section
/// (the final entry is the file length). The corruption-matrix tests
/// use this to truncate a checkpoint at exactly every boundary.
pub fn section_offsets(bytes: &[u8]) -> Result<Vec<usize>, PersistError> {
    let (_, sections) = read_document(bytes)?;
    // Header: magic(8) + version(4) + kind(1) + section count(4).
    let mut offset = 8 + 4 + 1 + 4;
    let mut offsets = vec![offset];
    for section in &sections {
        // Frame: tag(4) + length(8) + crc(4) + payload.
        offset += 4 + 8 + 4 + section.payload.len();
        offsets.push(offset);
    }
    Ok(offsets)
}

fn decode_config(payload: &[u8]) -> Result<SketchConfig, PersistError> {
    let mut r = ByteReader::new(payload);
    let num_tables_raw = r.u64("config num_tables")?;
    let num_tables = usize::try_from(num_tables_raw).map_err(|_| PersistError::Corrupt {
        context: format!("config num_tables {num_tables_raw} does not fit in memory"),
    })?;
    let buckets_raw = r.u64("config buckets_per_table")?;
    let buckets = usize::try_from(buckets_raw).map_err(|_| PersistError::Corrupt {
        context: format!("config buckets_per_table {buckets_raw} does not fit in memory"),
    })?;
    let max_levels = r.u32("config max_levels")?;
    let seed = r.u64("config seed")?;
    let group_tag = r.u8("config group_by tag")?;
    let bits = r.u8("config group_by bits")?;
    let family_tag = r.u8("config hash_family")?;
    r.expect_end()?;
    let prefix_bits = |bits: u8| -> Result<u8, PersistError> {
        if (1..=32).contains(&bits) {
            Ok(bits)
        } else {
            Err(PersistError::Corrupt {
                context: format!("config prefix bits {bits} outside 1..=32"),
            })
        }
    };
    let group_by = match group_tag {
        0 => GroupBy::Destination,
        1 => GroupBy::Source,
        2 => GroupBy::DestinationPrefix {
            bits: prefix_bits(bits)?,
        },
        3 => GroupBy::SourcePrefix {
            bits: prefix_bits(bits)?,
        },
        other => {
            return Err(PersistError::Corrupt {
                context: format!("unknown group_by tag {other}"),
            })
        }
    };
    let hash_family = match family_tag {
        0 => HashFamily::MultiplyShift,
        1 => HashFamily::Tabulation,
        other => {
            return Err(PersistError::Corrupt {
                context: format!("unknown hash_family tag {other}"),
            })
        }
    };
    SketchConfig::builder()
        .num_tables(num_tables)
        .buckets_per_table(buckets)
        .max_levels(max_levels)
        .seed(seed)
        .group_by(group_by)
        .hash_family(hash_family)
        .build()
        .map_err(PersistError::State)
}

fn decode_level(payload: &[u8]) -> Result<LevelSlabs, PersistError> {
    let mut r = ByteReader::new(payload);
    let level = r.u32("level index")?;
    let count_len = r.element_count(8, "level counter slab")?;
    let mut counts = Vec::with_capacity(count_len);
    for _ in 0..count_len {
        counts.push(r.i64("level counter")?);
    }
    let key_len = r.element_count(8, "level key-sum slab")?;
    let mut key_sums = Vec::with_capacity(key_len);
    for _ in 0..key_len {
        key_sums.push(r.u64("level key sum")?);
    }
    let fp_len = r.element_count(8, "level fp-sum slab")?;
    let mut fp_sums = Vec::with_capacity(fp_len);
    for _ in 0..fp_len {
        fp_sums.push(r.u64("level fp sum")?);
    }
    r.expect_end()?;
    Ok(LevelSlabs {
        level,
        counts,
        key_sums,
        fp_sums,
    })
}

fn decode_tracking_level(payload: &[u8]) -> Result<TrackingLevelState, PersistError> {
    let mut r = ByteReader::new(payload);
    let level = r.u32("tracking level index")?;
    let singleton_len = r.element_count(12, "tracking singleton list")?;
    let mut singletons = Vec::with_capacity(singleton_len);
    for _ in 0..singleton_len {
        let packed = r.u64("singleton key")?;
        let count = r.u32("singleton count")?;
        singletons.push((packed, count));
    }
    let heap_len = r.element_count(12, "tracking heap slots")?;
    let mut heap_slots = Vec::with_capacity(heap_len);
    for _ in 0..heap_len {
        let priority = r.u64("heap slot priority")?;
        let group = r.u32("heap slot group")?;
        heap_slots.push((priority, group));
    }
    let heap_underflows = r.u64("heap underflow counter")?;
    let heap_overflows = r.u64("heap overflow counter")?;
    let heap_adjusts = r.u64("heap adjust counter")?;
    r.expect_end()?;
    Ok(TrackingLevelState {
        level,
        singletons,
        heap_slots,
        heap_underflows,
        heap_overflows,
        heap_adjusts,
    })
}

fn expect_tag(section: &Section<'_>, tag: [u8; 4]) -> Result<(), PersistError> {
    if section.tag == tag {
        Ok(())
    } else {
        Err(PersistError::Corrupt {
            context: format!(
                "expected section {:?}, found {:?}",
                tag_name(tag),
                tag_name(section.tag)
            ),
        })
    }
}

fn decode_sketch_sections(sections: &[Section<'_>]) -> Result<SketchState, PersistError> {
    if sections.len() < 2 {
        return Err(PersistError::Corrupt {
            context: format!(
                "sketch document has {} section(s), needs at least CFG and MET",
                sections.len()
            ),
        });
    }
    expect_tag(&sections[0], TAG_CFG)?;
    expect_tag(&sections[1], TAG_MET)?;
    let config = decode_config(sections[0].payload)?;
    let mut met = ByteReader::new(sections[1].payload);
    let updates_processed = met.u64("updates_processed")?;
    let net_updates = met.i64("net_updates")?;
    met.expect_end()?;
    let mut levels = Vec::with_capacity(sections.len() - 2);
    for section in &sections[2..] {
        expect_tag(section, TAG_LVL)?;
        levels.push(decode_level(section.payload)?);
    }
    Ok(SketchState {
        config,
        updates_processed,
        net_updates,
        levels,
    })
}

fn decode_nested_sketch(payload: &[u8], what: &str) -> Result<SketchState, PersistError> {
    match decode(payload)? {
        Checkpoint::Sketch(state) => Ok(state),
        other => Err(PersistError::Corrupt {
            context: format!("{what}: embedded document is {:?}", other.kind_name()),
        }),
    }
}

fn decode_nested_tracking(payload: &[u8], what: &str) -> Result<TrackingState, PersistError> {
    match decode(payload)? {
        Checkpoint::Tracking(state) => Ok(state),
        other => Err(PersistError::Corrupt {
            context: format!("{what}: embedded document is {:?}", other.kind_name()),
        }),
    }
}

/// Decodes a checkpoint document, validating framing, CRCs, and
/// structural consistency. Never panics on any input.
///
/// Decoding validates the *representation*; the restored-state
/// constructors ([`dcs_core::DistinctCountSketch::from_state`] and
/// friends) validate the *semantics* — both must pass before any live
/// structure is built.
pub fn decode(bytes: &[u8]) -> Result<Checkpoint, PersistError> {
    let (kind, sections) = read_document(bytes)?;
    match kind {
        KIND_SKETCH => Ok(Checkpoint::Sketch(decode_sketch_sections(&sections)?)),
        KIND_TRACKING => {
            if sections.len() < 2 {
                return Err(PersistError::Corrupt {
                    context: format!(
                        "tracking document has {} section(s), needs at least SKC and TRM",
                        sections.len()
                    ),
                });
            }
            expect_tag(&sections[0], TAG_SKC)?;
            expect_tag(&sections[1], TAG_TRM)?;
            let sketch = decode_nested_sketch(sections[0].payload, "SKC section")?;
            let mut trm = ByteReader::new(sections[1].payload);
            let untracked_decrements = trm.u64("untracked_decrements")?;
            trm.expect_end()?;
            let mut levels = Vec::with_capacity(sections.len() - 2);
            for section in &sections[2..] {
                expect_tag(section, TAG_TRK)?;
                levels.push(decode_tracking_level(section.payload)?);
            }
            Ok(Checkpoint::Tracking(TrackingState {
                sketch,
                levels,
                untracked_decrements,
            }))
        }
        KIND_EPOCH => {
            if sections.len() < 2 {
                return Err(PersistError::Corrupt {
                    context: format!(
                        "epoch document has {} section(s), needs at least EPO and CUR",
                        sections.len()
                    ),
                });
            }
            expect_tag(&sections[0], TAG_EPO)?;
            expect_tag(&sections[1], TAG_CUR)?;
            let mut epo = ByteReader::new(sections[0].payload);
            let max_snapshots = epo.u64("epoch ring capacity")?;
            let epochs_rotated = epo.u64("epochs rotated")?;
            let snapshot_count = epo.u32("epoch snapshot count")?;
            epo.expect_end()?;
            let current = decode_nested_tracking(sections[1].payload, "CUR section")?;
            let mut snapshots = Vec::with_capacity(sections.len() - 2);
            for section in &sections[2..] {
                expect_tag(section, TAG_SNP)?;
                snapshots.push(decode_nested_sketch(section.payload, "SNP section")?);
            }
            if u64::try_from(snapshots.len()).unwrap_or(u64::MAX) != u64::from(snapshot_count) {
                return Err(PersistError::Corrupt {
                    context: format!(
                        "epoch document declares {snapshot_count} snapshot(s) \
                         but carries {}",
                        snapshots.len()
                    ),
                });
            }
            Ok(Checkpoint::Epoch(EpochCheckpoint {
                current,
                max_snapshots,
                epochs_rotated,
                snapshots,
            }))
        }
        KIND_SHARDED => {
            if sections.is_empty() {
                return Err(PersistError::Corrupt {
                    context: "sharded document has no sections, needs at least SHD".into(),
                });
            }
            expect_tag(&sections[0], TAG_SHD)?;
            let mut shd = ByteReader::new(sections[0].payload);
            let updates_distributed = shd.u64("updates distributed")?;
            let shard_count = shd.u32("shard count")?;
            shd.expect_end()?;
            let mut shards = Vec::with_capacity(sections.len() - 1);
            for section in &sections[1..] {
                expect_tag(section, TAG_SNP)?;
                shards.push(decode_nested_sketch(section.payload, "SNP section")?);
            }
            if u64::try_from(shards.len()).unwrap_or(u64::MAX) != u64::from(shard_count) {
                return Err(PersistError::Corrupt {
                    context: format!(
                        "sharded document declares {shard_count} shard(s) but carries {}",
                        shards.len()
                    ),
                });
            }
            Ok(Checkpoint::Sharded(ShardedCheckpoint {
                updates_distributed,
                shards,
            }))
        }
        other => Err(PersistError::Corrupt {
            context: format!("unknown document kind {other}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_core::{DestAddr, DistinctCountSketch, SourceAddr, TrackingDcs};

    fn config(seed: u64) -> SketchConfig {
        // Small dimensions keep the encoded documents in the tens of
        // KB; the exhaustive truncation test below decodes every
        // prefix, which is quadratic in document length.
        SketchConfig::builder()
            .num_tables(2)
            .buckets_per_table(8)
            .max_levels(5)
            .seed(seed)
            .build()
            .unwrap()
    }

    fn sample_sketch(seed: u64, pairs: u32) -> SketchState {
        let mut sketch = DistinctCountSketch::new(config(seed));
        for s in 0..pairs {
            sketch.insert(SourceAddr(s), DestAddr(s % 5));
        }
        sketch.to_state()
    }

    fn sample_tracking(seed: u64, pairs: u32) -> TrackingState {
        let mut t = TrackingDcs::new(config(seed));
        for s in 0..pairs {
            t.insert(SourceAddr(s), DestAddr(s % 5));
        }
        t.to_state()
    }

    #[test]
    fn sketch_document_roundtrips() {
        let state = sample_sketch(1, 300);
        let bytes = encode(&Checkpoint::Sketch(state.clone()));
        assert_eq!(decode(&bytes).unwrap(), Checkpoint::Sketch(state));
    }

    #[test]
    fn tracking_document_roundtrips() {
        let state = sample_tracking(2, 400);
        let bytes = encode(&Checkpoint::Tracking(state.clone()));
        assert_eq!(decode(&bytes).unwrap(), Checkpoint::Tracking(state));
    }

    #[test]
    fn epoch_document_roundtrips() {
        let epoch = EpochCheckpoint {
            current: sample_tracking(3, 200),
            max_snapshots: 4,
            epochs_rotated: 9,
            snapshots: vec![sample_sketch(3, 50), sample_sketch(3, 120)],
        };
        let bytes = encode(&Checkpoint::Epoch(epoch.clone()));
        assert_eq!(decode(&bytes).unwrap(), Checkpoint::Epoch(epoch));
    }

    #[test]
    fn sharded_document_roundtrips() {
        let sharded = ShardedCheckpoint {
            updates_distributed: 777,
            shards: vec![
                sample_sketch(4, 80),
                sample_sketch(4, 90),
                sample_sketch(4, 10),
            ],
        };
        let bytes = encode(&Checkpoint::Sharded(sharded.clone()));
        assert_eq!(decode(&bytes).unwrap(), Checkpoint::Sharded(sharded));
    }

    #[test]
    fn empty_sketch_roundtrips() {
        let state = DistinctCountSketch::new(config(5)).to_state();
        let bytes = encode(&Checkpoint::Sketch(state.clone()));
        assert_eq!(decode(&bytes).unwrap(), Checkpoint::Sketch(state));
    }

    #[test]
    fn encoding_is_deterministic() {
        let a = encode(&Checkpoint::Tracking(sample_tracking(6, 250)));
        let b = encode(&Checkpoint::Tracking(sample_tracking(6, 250)));
        assert_eq!(a, b);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode(&Checkpoint::Sketch(sample_sketch(7, 10)));
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(PersistError::BadMagic { .. })));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = encode(&Checkpoint::Sketch(sample_sketch(8, 10)));
        // Version field sits right after the 8-byte magic.
        bytes[8] = 0xff;
        assert!(matches!(
            decode(&bytes),
            Err(PersistError::UnsupportedVersion { found, .. }) if found != FORMAT_VERSION
        ));
    }

    #[test]
    fn unknown_document_kind_is_rejected() {
        let mut bytes = encode(&Checkpoint::Sketch(sample_sketch(9, 10)));
        // Kind byte sits after magic(8) + version(4).
        bytes[12] = 99;
        assert!(matches!(decode(&bytes), Err(PersistError::Corrupt { .. })));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode(&Checkpoint::Sketch(sample_sketch(10, 10)));
        bytes.push(0);
        assert!(matches!(
            decode(&bytes),
            Err(PersistError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn payload_bit_flip_is_a_checksum_mismatch() {
        let bytes = encode(&Checkpoint::Sketch(sample_sketch(11, 100)));
        let boundaries = section_offsets(&bytes).unwrap();
        // Flip one bit inside the first section's payload (just past
        // its 16-byte frame header).
        let mut flipped = bytes.clone();
        let target = boundaries[0] + 16 + 2;
        flipped[target] ^= 0x10;
        assert!(matches!(
            decode(&flipped),
            Err(PersistError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn section_offsets_cover_the_whole_file() {
        let bytes = encode(&Checkpoint::Tracking(sample_tracking(12, 150)));
        let offsets = section_offsets(&bytes).unwrap();
        assert_eq!(*offsets.last().unwrap(), bytes.len());
        assert!(offsets.len() >= 3, "SKC + TRM + at least one TRK");
        for pair in offsets.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn truncation_at_every_offset_is_an_error_not_a_panic() {
        let bytes = encode(&Checkpoint::Sketch(sample_sketch(13, 60)));
        for cut in 0..bytes.len() {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "decode of {cut}-byte prefix unexpectedly succeeded"
            );
        }
    }

    #[test]
    fn mismatched_snapshot_count_is_corrupt() {
        let epoch = EpochCheckpoint {
            current: sample_tracking(14, 60),
            max_snapshots: 4,
            epochs_rotated: 1,
            snapshots: vec![sample_sketch(14, 10)],
        };
        let bytes = encode(&Checkpoint::Epoch(epoch));
        // Drop the final SNP section and fix up the section count so the
        // framing stays valid; the declared snapshot count now lies.
        let offsets = section_offsets(&bytes).unwrap();
        let mut shortened = bytes[..offsets[offsets.len() - 2]].to_vec();
        // Section count is a u32 at offset 13 (magic 8 + version 4 + kind 1).
        let old_count = u32::from_le_bytes([bytes[13], bytes[14], bytes[15], bytes[16]]);
        shortened[13..17].copy_from_slice(&(old_count - 1).to_le_bytes());
        assert!(matches!(
            decode(&shortened),
            Err(PersistError::Corrupt { .. })
        ));
    }
}
