//! Hand-rolled little-endian wire primitives and CRC-32.
//!
//! Same philosophy as `dcs-telemetry`'s hand-rolled JSONL: the build
//! environment vendors no serialization crates, so the checkpoint codec
//! writes and reads its bytes directly. Everything is little-endian
//! with fixed widths; readers return typed
//! [`PersistError::Truncated`] errors instead of panicking on short
//! input.

use crate::error::PersistError;

/// Precomputed table for the reflected IEEE CRC-32 (polynomial
/// `0xEDB88320`) — the same checksum gzip, PNG, and zlib use.
const CRC32_TABLE: [u32; 256] = build_crc32_table();

const fn build_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// The reflected IEEE CRC-32 of `data`.
///
/// Detects every single-bit error (and all burst errors up to 32 bits),
/// which is what the corruption-matrix tests lean on: any one flipped
/// bit in a section payload is guaranteed to surface as a
/// [`PersistError::ChecksumMismatch`].
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &byte in data {
        let index = usize::from((c ^ u32::from(byte)) as u8);
        c = CRC32_TABLE[index] ^ (c >> 8);
    }
    !c
}

/// An append-only little-endian byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian two's complement.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// A bounds-checked little-endian reader over a byte slice.
///
/// Every read names what it was reading, so a short file produces
/// `Truncated { context: "level counter slab" }` rather than an index
/// panic.
#[derive(Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a byte slice for reading from the start.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes the next `n` bytes, or fails with the reading context.
    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated {
                context: what.to_string(),
            });
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self, what: &str) -> Result<u8, PersistError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, what: &str) -> Result<u32, PersistError> {
        let bytes = self.take(4, what)?;
        let mut arr = [0u8; 4];
        arr.copy_from_slice(bytes);
        Ok(u32::from_le_bytes(arr))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, what: &str) -> Result<u64, PersistError> {
        let bytes = self.take(8, what)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads a little-endian two's-complement `i64`.
    pub fn i64(&mut self, what: &str) -> Result<i64, PersistError> {
        let bytes = self.take(8, what)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Ok(i64::from_le_bytes(arr))
    }

    /// Reads a `u64` count of fixed-width elements, pre-checking that
    /// the claimed `count × width` bytes actually remain — a corrupted
    /// length can therefore never trigger an over-allocation or a long
    /// sequence of element-wise truncation errors.
    pub fn element_count(&mut self, width: usize, what: &str) -> Result<usize, PersistError> {
        let raw = self.u64(what)?;
        let count = usize::try_from(raw).map_err(|_| PersistError::Corrupt {
            context: format!("{what}: count {raw} does not fit in memory"),
        })?;
        let needed = count
            .checked_mul(width)
            .ok_or_else(|| PersistError::Corrupt {
                context: format!("{what}: count {count} × width {width} overflows"),
            })?;
        if self.remaining() < needed {
            return Err(PersistError::Truncated {
                context: what.to_string(),
            });
        }
        Ok(count)
    }

    /// Fails with [`PersistError::TrailingBytes`] unless the reader is
    /// exactly exhausted.
    pub fn expect_end(&self) -> Result<(), PersistError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(PersistError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
    }

    #[test]
    fn crc32_detects_every_single_bit_flip() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let clean = crc32(data);
        for byte in 0..data.len() {
            for bit in 0..8u8 {
                let mut flipped = data.to_vec();
                flipped[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&flipped),
                    clean,
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_bytes(b"xyz");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xdead_beef);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 1);
        assert_eq!(r.i64("d").unwrap(), -42);
        assert_eq!(r.take(3, "e").unwrap(), b"xyz");
        r.expect_end().unwrap();
    }

    #[test]
    fn short_reads_name_their_context() {
        let mut r = ByteReader::new(&[1, 2]);
        let err = r.u32("test field").unwrap_err();
        match err {
            PersistError::Truncated { context } => assert_eq!(context, "test field"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let r = ByteReader::new(&[1, 2, 3]);
        match r.expect_end().unwrap_err() {
            PersistError::TrailingBytes { remaining } => assert_eq!(remaining, 3),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn element_count_rejects_absurd_lengths() {
        // Claims u64::MAX elements with only a few payload bytes behind.
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX);
        w.put_bytes(&[0; 16]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.element_count(8, "slab").is_err());
    }
}
