//! Offline stand-in for the `bytes` crate (1.x-compatible subset).
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of the `bytes` API it uses: [`BytesMut`] as a
//! growable big-endian write buffer ([`BufMut`]), [`Bytes`] as its
//! frozen read-only form, and [`Buf`] for cursor-style big-endian
//! reads from `&[u8]`. Unlike the real crate there is no shared
//! ref-counted storage — `Bytes` owns a plain `Vec<u8>` — which is
//! semantically equivalent for the encode/decode workloads here.

use std::ops::Deref;

/// Cursor-style reads over a byte source. Network byte order
/// (big-endian), advancing past everything read.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte, advancing by 1. Panics when empty.
    fn get_u8(&mut self) -> u8;

    /// Reads a big-endian `u64`, advancing by 8. Panics if fewer than
    /// 8 bytes remain.
    fn get_u64(&mut self) -> u64;

    /// Reads a big-endian `u32`, advancing by 4. Panics if fewer than
    /// 4 bytes remain.
    fn get_u32(&mut self) -> u32;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (byte, rest) = self.split_first().expect("buffer underflow reading u8");
        *self = rest;
        *byte
    }

    fn get_u64(&mut self) -> u64 {
        assert!(self.len() >= 8, "buffer underflow reading u64");
        let (head, rest) = self.split_at(8);
        let value = u64::from_be_bytes(head.try_into().expect("split_at(8) is 8 bytes"));
        *self = rest;
        value
    }

    fn get_u32(&mut self) -> u32 {
        assert!(self.len() >= 4, "buffer underflow reading u32");
        let (head, rest) = self.split_at(4);
        let value = u32::from_be_bytes(head.try_into().expect("split_at(4) is 4 bytes"));
        *self = rest;
        value
    }
}

/// Append-only writes to a growable buffer, in network byte order.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, value: u64) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, value: u32) {
        self.put_slice(&value.to_be_bytes());
    }
}

/// A growable write buffer; freeze it into [`Bytes`] when done.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// An immutable byte buffer. Derefs to `&[u8]`, so slicing, `len`,
/// `to_vec`, and passing as `&[u8]` all work directly.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(bytes: Bytes) -> Self {
        bytes.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_then_reads_big_endian() {
        let mut buf = BytesMut::with_capacity(13);
        buf.put_slice(b"HDR!");
        buf.put_u64(0x0102_0304_0506_0708);
        buf.put_u8(0x7f);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 13);
        assert_eq!(&frozen[..4], b"HDR!");

        let mut cursor = &frozen[4..];
        assert!(cursor.has_remaining());
        assert_eq!(cursor.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(cursor.get_u8(), 0x7f);
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn u32_roundtrip_and_vec_bufmut() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u32(0xDEAD_BEEF);
        let mut cursor = &buf[..];
        assert_eq!(cursor.get_u32(), 0xDEAD_BEEF);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn reading_past_the_end_panics() {
        let mut cursor: &[u8] = &[1, 2, 3];
        let _ = cursor.get_u64();
    }
}
