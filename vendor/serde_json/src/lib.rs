//! Offline placeholder for the `serde_json` crate.
//!
//! The build environment has no crates.io access. JSON *emission* in
//! this workspace (`ExperimentRecord::to_json`) is hand-rolled and
//! does not need this crate; JSON *parsing* (round-trip tests) is
//! feature-gated off by default. This empty crate exists only so
//! `Cargo.toml` entries naming `serde_json` resolve.
