//! Offline placeholder for the `serde` crate.
//!
//! The build environment has no crates.io access. The workspace's
//! `serde` integration (derives, custom impls, JSON round-trip tests)
//! is feature-gated and **off by default**; this empty crate exists
//! only so `Cargo.toml` entries naming `serde` resolve. Enabling a
//! `serde` feature against this placeholder is a compile error by
//! design — swap in the real crate to use serialization.
