//! Offline stand-in for the `crossbeam` crate (0.8-compatible subset).
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of crossbeam it uses: `channel::bounded` with a
//! cloneable blocking `Sender` and an iterable `Receiver`. Backed by
//! [`std::sync::mpsc::sync_channel`], which has the same blocking
//! bounded-capacity semantics for the MPSC topology this workspace
//! relies on.

pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone;
    /// carries the unsent message like crossbeam's.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half of a bounded channel. Cloneable; `send` blocks
    /// while the channel is full.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued, or errors if the
        /// receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of a bounded channel. Iterable: iteration
    /// blocks per message and ends when all senders are dropped.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// A blocking iterator over received messages.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.iter()
        }
    }

    /// Creates a bounded channel: sends block once `capacity` messages
    /// are in flight.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_channel_roundtrips_across_threads() {
        let (tx, rx) = channel::bounded::<u32>(2);
        let tx2 = tx.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        drop(tx2);
        let got: Vec<u32> = rx.into_iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_after_receiver_drop_returns_the_message() {
        let (tx, rx) = channel::bounded::<&'static str>(1);
        drop(rx);
        assert_eq!(tx.send("lost"), Err(channel::SendError("lost")));
    }
}
