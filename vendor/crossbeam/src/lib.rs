//! Offline stand-in for the `crossbeam` crate (0.8-compatible subset).
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of crossbeam it uses: `channel::bounded` with a
//! cloneable blocking `Sender` and an iterable `Receiver` (backed by
//! [`std::sync::mpsc::sync_channel`], which has the same blocking
//! bounded-capacity semantics for the MPSC topology this workspace
//! relies on), and `queue::ArrayQueue`, a bounded lock-free MPMC ring
//! implementing the Dmitry Vyukov bounded-queue algorithm exactly as
//! crossbeam 0.8 does (lap-stamped slots), which the sharded ingest
//! engine uses as an SPSC handoff ring.

pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone;
    /// carries the unsent message like crossbeam's.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half of a bounded channel. Cloneable; `send` blocks
    /// while the channel is full.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued, or errors if the
        /// receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// The receiving half of a bounded channel. Iterable: iteration
    /// blocks per message and ends when all senders are dropped.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// A blocking iterator over received messages.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.iter()
        }
    }

    /// Creates a bounded channel: sends block once `capacity` messages
    /// are in flight.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

pub mod queue {
    use std::cell::UnsafeCell;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{self, AtomicUsize, Ordering};

    /// One ring slot: a lap-stamped value cell.
    ///
    /// The stamp encodes which "lap" of the ring last touched the slot:
    /// `stamp == tail` means the slot is free for the push at position
    /// `tail`; `stamp == head + 1` means it holds the value for the pop
    /// at position `head`.
    struct Slot<T> {
        stamp: AtomicUsize,
        value: UnsafeCell<MaybeUninit<T>>,
    }

    /// A bounded lock-free multi-producer multi-consumer queue
    /// (crossbeam 0.8's `ArrayQueue`): Vyukov's bounded queue with one
    /// atomic stamp per slot, no locks, no blocking. `push` fails —
    /// returning the value — when the ring is full; `pop` returns
    /// `None` when it is empty.
    ///
    /// Positions (`head`, `tail`) pack a slot index in the low bits and
    /// a lap counter above it (`one_lap` is the lap increment), so ABA
    /// over full wrap-arounds is resolved by stamp comparison rather
    /// than power-of-two capacity tricks.
    pub struct ArrayQueue<T> {
        head: AtomicUsize,
        tail: AtomicUsize,
        buffer: Box<[Slot<T>]>,
        cap: usize,
        one_lap: usize,
    }

    unsafe impl<T: Send> Send for ArrayQueue<T> {}
    unsafe impl<T: Send> Sync for ArrayQueue<T> {}

    impl<T> std::fmt::Debug for ArrayQueue<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("ArrayQueue")
                .field("len", &self.len())
                .field("cap", &self.cap)
                .finish()
        }
    }

    impl<T> ArrayQueue<T> {
        /// Creates a queue holding at most `cap` elements.
        ///
        /// # Panics
        ///
        /// Panics if `cap` is zero.
        pub fn new(cap: usize) -> Self {
            assert!(cap > 0, "capacity must be non-zero");
            // One lap is the smallest power of two exceeding `cap`, so
            // a position's index (low bits) and lap (high bits) never
            // overlap.
            let one_lap = (cap + 1).next_power_of_two();
            let buffer: Box<[Slot<T>]> = (0..cap)
                .map(|i| Slot {
                    stamp: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect();
            Self {
                head: AtomicUsize::new(0),
                tail: AtomicUsize::new(0),
                buffer,
                cap,
                one_lap,
            }
        }

        fn index(&self, pos: usize) -> usize {
            pos & (self.one_lap - 1)
        }

        /// The position one step after `pos`, wrapping index and
        /// bumping the lap at the end of the buffer.
        fn next_pos(&self, pos: usize) -> usize {
            let index = self.index(pos);
            let lap = pos & !(self.one_lap - 1);
            if index + 1 < self.cap {
                pos + 1
            } else {
                lap.wrapping_add(self.one_lap)
            }
        }

        /// Attempts to enqueue `value`; on a full queue returns it back
        /// as `Err`.
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut tail = self.tail.load(Ordering::Relaxed);
            loop {
                let slot = &self.buffer[self.index(tail)];
                let stamp = slot.stamp.load(Ordering::Acquire);
                if stamp == tail {
                    // Slot free for this lap: claim the position.
                    match self.tail.compare_exchange_weak(
                        tail,
                        self.next_pos(tail),
                        Ordering::SeqCst,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            unsafe { (*slot.value.get()).write(value) };
                            slot.stamp.store(tail + 1, Ordering::Release);
                            return Ok(());
                        }
                        Err(current) => tail = current,
                    }
                } else if stamp.wrapping_add(self.one_lap) == tail + 1 {
                    // The slot still holds last lap's value. If head
                    // hasn't moved either, the queue is genuinely full.
                    atomic::fence(Ordering::SeqCst);
                    let head = self.head.load(Ordering::Relaxed);
                    if head.wrapping_add(self.one_lap) == tail {
                        return Err(value);
                    }
                    tail = self.tail.load(Ordering::Relaxed);
                } else {
                    tail = self.tail.load(Ordering::Relaxed);
                }
            }
        }

        /// Attempts to dequeue; returns `None` when the queue is empty.
        pub fn pop(&self) -> Option<T> {
            let mut head = self.head.load(Ordering::Relaxed);
            loop {
                let slot = &self.buffer[self.index(head)];
                let stamp = slot.stamp.load(Ordering::Acquire);
                if stamp == head + 1 {
                    // Slot holds this lap's value: claim the position.
                    match self.head.compare_exchange_weak(
                        head,
                        self.next_pos(head),
                        Ordering::SeqCst,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            let value = unsafe { (*slot.value.get()).assume_init_read() };
                            slot.stamp
                                .store(head.wrapping_add(self.one_lap), Ordering::Release);
                            return Some(value);
                        }
                        Err(current) => head = current,
                    }
                } else if stamp == head {
                    // The slot hasn't been written this lap. If tail
                    // hasn't moved either, the queue is genuinely empty.
                    atomic::fence(Ordering::SeqCst);
                    let tail = self.tail.load(Ordering::Relaxed);
                    if tail == head {
                        return None;
                    }
                    head = self.head.load(Ordering::Relaxed);
                } else {
                    head = self.head.load(Ordering::Relaxed);
                }
            }
        }

        /// Maximum number of elements the queue holds.
        pub fn capacity(&self) -> usize {
            self.cap
        }

        /// Current number of enqueued elements (a racy snapshot under
        /// concurrent use, exact when quiescent).
        pub fn len(&self) -> usize {
            loop {
                let tail = self.tail.load(Ordering::SeqCst);
                let head = self.head.load(Ordering::SeqCst);
                // Retry if tail moved while we read head, so the pair
                // is a consistent snapshot.
                if self.tail.load(Ordering::SeqCst) == tail {
                    let hix = self.index(head);
                    let tix = self.index(tail);
                    return if hix < tix {
                        tix - hix
                    } else if hix > tix {
                        self.cap - hix + tix
                    } else if tail == head {
                        0
                    } else {
                        self.cap
                    };
                }
            }
        }

        /// Whether the queue currently holds no elements.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Whether the queue is at capacity.
        pub fn is_full(&self) -> bool {
            self.len() == self.cap
        }
    }

    impl<T> Drop for ArrayQueue<T> {
        fn drop(&mut self) {
            // Drain remaining values so their destructors run.
            while self.pop().is_some() {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use super::queue::ArrayQueue;
    use std::sync::Arc;

    #[test]
    fn bounded_channel_roundtrips_across_threads() {
        let (tx, rx) = channel::bounded::<u32>(2);
        let tx2 = tx.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        drop(tx2);
        let got: Vec<u32> = rx.into_iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_after_receiver_drop_returns_the_message() {
        let (tx, rx) = channel::bounded::<&'static str>(1);
        drop(rx);
        assert_eq!(tx.send("lost"), Err(channel::SendError("lost")));
    }

    #[test]
    fn array_queue_fifo_and_capacity() {
        let q = ArrayQueue::new(3);
        assert_eq!(q.capacity(), 3);
        assert!(q.is_empty());
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert!(q.push(3).is_ok());
        assert!(q.is_full());
        assert_eq!(q.push(4), Err(4));
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(4).is_ok());
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn array_queue_wraps_many_laps() {
        // Odd capacity exercises the non-power-of-two lap arithmetic.
        let q = ArrayQueue::new(5);
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        // A standing backlog of 2 keeps head and tail offset while
        // both sweep through thousands of laps.
        for _ in 0..2 {
            q.push(next_in).unwrap();
            next_in += 1;
        }
        for _ in 0..4_000 {
            for _ in 0..3 {
                q.push(next_in).unwrap();
                next_in += 1;
            }
            assert_eq!(q.len(), 5);
            for _ in 0..3 {
                assert_eq!(q.pop(), Some(next_out));
                next_out += 1;
            }
        }
        assert_eq!(q.pop(), Some(next_out));
        assert_eq!(q.pop(), Some(next_out + 1));
        assert!(q.is_empty());
    }

    #[test]
    fn array_queue_spsc_across_threads() {
        let q = Arc::new(ArrayQueue::<u64>::new(8));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..100_000u64 {
                    let mut v = i;
                    while let Err(back) = q.push(v) {
                        v = back;
                        std::thread::yield_now();
                    }
                }
            })
        };
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut expected = 0u64;
                while expected < 100_000 {
                    match q.pop() {
                        Some(v) => {
                            assert_eq!(v, expected);
                            expected += 1;
                        }
                        None => std::thread::yield_now(),
                    }
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap();
        assert!(q.is_empty());
    }

    #[test]
    fn array_queue_drop_runs_destructors_of_remaining_items() {
        struct Tracked(Arc<std::sync::atomic::AtomicUsize>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        }
        let drops = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let q = ArrayQueue::new(4);
        for _ in 0..3 {
            q.push(Tracked(Arc::clone(&drops))).ok().unwrap();
        }
        drop(q.pop());
        assert_eq!(drops.load(std::sync::atomic::Ordering::SeqCst), 1);
        drop(q);
        assert_eq!(drops.load(std::sync::atomic::Ordering::SeqCst), 3);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn array_queue_zero_capacity_panics() {
        let _ = ArrayQueue::<u8>::new(0);
    }
}
