//! Offline stand-in for the `proptest` crate (1.x-compatible subset).
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of the proptest API it uses: the [`Strategy`]
//! trait with `prop_map`/`boxed`, range / tuple / `Just` / `any` /
//! collection strategies, the `proptest!`, `prop_assert!`,
//! `prop_assert_eq!` and `prop_oneof!` macros, and a deterministic
//! generate-and-check runner.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case reports its inputs and seed
//!   instead of minimizing them.
//! - **Deterministic.** Case seeds derive from the test's module path
//!   and case index, so every run explores the same inputs — failures
//!   are always reproducible.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleUniform};
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Erases the strategy's concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// A type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut StdRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice among alternatives (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Half-open ranges are strategies over their span.
    impl<T: SampleUniform> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::sample_half_open(rng, self.start, self.end)
        }
    }

    /// Inclusive ranges are strategies over their span.
    impl<T: SampleUniform> Strategy for RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::sample_inclusive(rng, *self.start(), *self.end())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait ArbitraryValue: Sized {
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_via_standard {
        ($($t:ty),+) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.gen::<$t>()
                }
            }
        )+};
    }

    impl_arbitrary_via_standard!(u8, u16, u32, u64, bool);

    impl ArbitraryValue for usize {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<u64>() as usize
        }
    }

    impl ArbitraryValue for i64 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<u64>() as i64
        }
    }

    impl ArbitraryValue for i32 {
        fn arbitrary(rng: &mut StdRng) -> Self {
            rng.gen::<u32>() as i32
        }
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Whole-domain strategy for `T` (`any::<u64>()` etc.).
    pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy over both booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }

    /// `proptest::bool::ANY` — uniform over `{true, false}`.
    pub const ANY: BoolAny = BoolAny;
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Size bounds for generated collections (half-open, like `1..300`).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "collection size range must be non-empty");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.min..self.max_exclusive)
        }
    }

    /// Strategy for vectors of `element`-generated values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for hash sets of `element`-generated values.
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::hash_set(element, len_range)`.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> HashSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = HashSet::with_capacity(target);
            // Duplicates shrink the set below target; bound the retries
            // so tiny value domains cannot loop forever.
            let max_tries = 20 * target + 100;
            for _ in 0..max_tries {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the offline suite
            // fast while still exercising a meaningful input variety.
            ProptestConfig { cases: 64 }
        }
    }

    /// A test-case failure (or rejection) raised from a property body.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property does not hold.
        Fail(String),
        /// The inputs were unsuitable; the case is retried, not failed.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Renders `name = value` input pairs for failure reports.
    pub fn format_inputs(pairs: &[(&str, &dyn std::fmt::Debug)]) -> String {
        pairs
            .iter()
            .map(|(name, value)| format!("{name} = {value:?}"))
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Drives `config.cases` deterministic cases of the property `f`.
    ///
    /// Case seeds derive from `name` and the case index, so runs are
    /// reproducible; `f` reports failures as `Err(TestCaseError)` (the
    /// `proptest!` macro also routes body panics through it with the
    /// generated inputs echoed to stderr first).
    pub fn run_cases(
        config: ProptestConfig,
        name: &str,
        mut f: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    ) {
        let base = fnv1a(name);
        let mut passed = 0u32;
        let mut attempt = 0u64;
        while passed < config.cases {
            let seed = base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = StdRng::seed_from_u64(seed);
            match f(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(reason)) => panic!(
                    "property '{name}' failed at case {attempt} (seed {seed:#018x}): {reason}"
                ),
            }
            attempt += 1;
            if attempt > config.cases as u64 * 16 + 256 {
                panic!("property '{name}' rejected too many cases to complete");
            }
        }
    }
}

/// Runs deterministic property tests: `proptest! { fn name(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @config($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config($config:expr)
     $($(#[$attr:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        // Like real proptest, `#[test]` is NOT added here — callers
        // write it (and any other attributes) inside the macro block.
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let case_name = concat!(module_path!(), "::", stringify!($name));
                $crate::test_runner::run_cases(config, case_name, |rng| {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), rng);)+
                    let inputs = $crate::test_runner::format_inputs(&[
                        $((stringify!($arg), &$arg as &dyn ::std::fmt::Debug)),+
                    ]);
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            move || -> ::std::result::Result<
                                (),
                                $crate::test_runner::TestCaseError,
                            > {
                                $body;
                                ::std::result::Result::Ok(())
                            },
                        ),
                    );
                    match outcome {
                        ::std::result::Result::Ok(result) => result.map_err(|e| {
                            $crate::test_runner::TestCaseError::Fail(
                                ::std::format!("{e}\n    inputs: {inputs}"),
                            )
                        }),
                        ::std::result::Result::Err(payload) => {
                            ::std::eprintln!(
                                "property '{}' panicked with inputs: {}",
                                case_name, inputs
                            );
                            ::std::panic::resume_unwind(payload)
                        }
                    }
                });
            }
        )*
    };
}

/// Fails the property (returns `Err(TestCaseError::Fail)`) unless `cond`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fails the property unless `left == right`, reporting both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{}\n  left: `{:?}`\n right: `{:?}`",
            ::std::format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Uniform choice among strategy arms (all arms must share one value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec::Vec::from([
            $($crate::strategy::Strategy::boxed($strategy)),+
        ]))
    };
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_collections_generate_in_bounds() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let strat = crate::collection::vec((0u32..64, 0u32..8, crate::bool::ANY), 1..300);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!((1..300).contains(&v.len()));
            assert!(v.iter().all(|&(a, b, _)| a < 64 && b < 8));
        }
        let sets = crate::collection::hash_set((0u32..1000, 0u32..20), 1..60);
        for _ in 0..50 {
            let s = sets.generate(&mut rng);
            assert!((1..60).contains(&s.len()), "len = {}", s.len());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_roundtrip(xs in crate::collection::vec(any::<u8>(), 0..10), flip in any::<bool>()) {
            prop_assert!(xs.len() < 10);
            prop_assert_eq!(flip, flip);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_reports() {
        crate::test_runner::run_cases(ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn oneof_hits_every_arm() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let strat = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
