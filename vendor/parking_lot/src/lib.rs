//! Offline stand-in for the `parking_lot` crate (0.12-compatible
//! subset).
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the one type it uses: a non-poisoning [`Mutex`] whose
//! `lock()` returns the guard directly (a poisoned std lock is
//! recovered via `into_inner`, matching parking_lot's behavior of not
//! propagating poison).

use std::sync::{self, MutexGuard as StdMutexGuard};

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

/// A non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons: if
    /// a holder panicked, the data is handed over as-is.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_excludes_and_accumulates() {
        let total = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *total.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*total.lock(), 8000);
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(5u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }
}
