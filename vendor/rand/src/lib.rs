//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the narrow slice of the `rand` API it actually
//! uses: `StdRng` seeded via [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension methods (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a
//! high-quality, deterministic PRNG, but a *different stream* than the
//! real `rand::rngs::StdRng` (ChaCha12). Fixed-seed statistical tests
//! in the workspace are calibrated against this stream.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: 64 bits at a time.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value domain
/// (the stand-in for rand's `Standard` distribution).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer (and float) types that support uniform range sampling.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[low, high)` (`high` exclusive).
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]` (`high` inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Unbiased uniform `u64` in `[0, span)` via Lemire-style widening
/// multiply with rejection.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut m = (rng.next_u64() as u128) * (span as u128);
    let mut low = m as u64;
    if low < span {
        let threshold = span.wrapping_neg() % span;
        while low < threshold {
            m = (rng.next_u64() as u128) * (span as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as i128 - low as i128) as u64;
                let offset = uniform_u64_below(rng, span);
                ((low as i128) + offset as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range called with empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return ((low as i128) + rng.next_u64() as i128) as $t;
                }
                let offset = uniform_u64_below(rng, span as u64);
                ((low as i128) + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with empty range");
        low + f64::sample_standard(rng) * (high - low)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        Self::sample_half_open(rng, low, high)
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Extension methods over any [`RngCore`] (the rand `Rng` trait).
pub trait Rng: RngCore {
    /// Samples a value uniformly from the type's full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's
    /// ChaCha12-based `StdRng`; same API, different stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state,
            // as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{RngCore, SampleUniform};

    /// Slice extension methods (only `shuffle` is provided).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_half_open(rng, 0, i + 1);
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0..=5u64);
            assert!(y <= 5);
            let z: f64 = rng.gen();
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seeded shuffle should not be identity");
    }

    #[test]
    fn full_domain_inclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(11);
        let _ = rng.gen_range(0u64..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
    }
}
