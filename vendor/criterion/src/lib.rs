//! Offline stand-in for the `criterion` crate (0.5-compatible subset).
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the benchmark-harness API it uses: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `Bencher::iter` / `iter_batched`, `BatchSize`, `BenchmarkId`,
//! `Throughput::Elements`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: per benchmark, a short warm-up, then
//! `sample_size` samples, each running enough iterations to cover a
//! minimum sample duration; the report prints the minimum / median /
//! maximum per-iteration time (and element throughput when configured).
//! `--test` runs each body exactly once with no timing. `--quick` (the
//! CI smoke mode) shrinks the warm-up, per-sample duration, and sample
//! count ~10× so a full bench binary finishes in seconds while still
//! producing real (if noisier) numbers. Unknown CLI flags (e.g.
//! `--bench`, filter strings) are accepted and ignored so `cargo bench`
//! invocations work unchanged.
//!
//! When the `CRITERION_JSON_OUT` environment variable names a file,
//! every reported benchmark is also appended to a process-global
//! registry and [`write_json_results`] (invoked by `criterion_main!`
//! after all groups run) writes them as one JSON document — the hook CI
//! uses to emit machine-readable `BENCH_*.json` artifacts.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Opaque value barrier — re-export of [`std::hint::black_box`].
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The measured body processes this many logical elements.
    Elements(u64),
    /// The measured body processes this many bytes.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]. The stand-in
/// times each routine call individually, so the variants only matter
/// for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input; batches could be large.
    SmallInput,
    /// Large per-iteration input; batches should be small.
    LargeInput,
    /// One setup per routine call (what this stand-in always does).
    PerIteration,
}

/// Identifier for one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` (e.g. `BenchmarkId::new("basic", r)`).
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only id (e.g. `BenchmarkId::from_parameter(shards)`).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark bodies.
pub struct Bencher {
    test_mode: bool,
    quick: bool,
    sample_size: usize,
    /// Measured per-iteration times, one entry per sample.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Warm-up budget: ~200ms normally, ~20ms in `--quick` mode.
    fn warmup_budget(&self) -> Duration {
        if self.quick {
            Duration::from_millis(20)
        } else {
            Duration::from_millis(200)
        }
    }

    /// Per-sample duration target: ~20ms normally, ~2ms in `--quick`.
    fn target_sample_ns(&self) -> u128 {
        if self.quick {
            Duration::from_millis(2).as_nanos()
        } else {
            Duration::from_millis(20).as_nanos()
        }
    }

    /// Measures `body` (or runs it once in `--test` mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        if self.test_mode {
            black_box(body());
            return;
        }
        // Warm-up: run until the budget has elapsed to stabilize caches
        // and clocks, and estimate the per-iteration cost.
        let warmup = self.warmup_budget();
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < warmup {
            black_box(body());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_nanos().max(1) / u128::from(warmup_iters.max(1));
        // Size each sample to hit the target duration so short bodies
        // are timed over many iterations and the clock's resolution is
        // immaterial.
        let target_sample = self.target_sample_ns();
        let iters_per_sample = (target_sample / per_iter.max(1)).clamp(1, 1_000_000_000) as u64;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(body());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed / iters_per_sample as u32);
        }
        self.samples.sort_unstable();
    }

    /// Measures `routine` on fresh input from `setup`, excluding both
    /// the setup cost and the drop of the routine's output from the
    /// timing (or runs each once in `--test` mode).
    ///
    /// Matching upstream criterion, the routine's return value is
    /// dropped *outside* the timed window — for bodies that build and
    /// return a large structure (a populated sketch), its teardown is
    /// allocator work, not routine work, and folding it into the
    /// measurement couples the reported time to heap state and bench
    /// ordering (see the dcs-bench README's measurement-protocol
    /// notes).
    ///
    /// Unlike upstream criterion this stand-in always runs one setup
    /// per routine call and times the routine calls individually, so
    /// `size` is accepted only for API compatibility. Intended for
    /// routines long enough (≫ clock resolution) that per-call timing
    /// is accurate — e.g. feeding a whole update stream to a sketch.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let _ = size;
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        // Warm-up sized by routine time alone (setup excluded), to
        // mirror the measurement below.
        let warmup = self.warmup_budget();
        let mut warmup_spent = Duration::ZERO;
        let mut warmup_iters: u64 = 0;
        while warmup_spent < warmup {
            let input = setup();
            let start = Instant::now();
            let output = black_box(routine(input));
            warmup_spent += start.elapsed();
            drop(output);
            warmup_iters += 1;
        }
        let per_iter = warmup_spent.as_nanos().max(1) / u128::from(warmup_iters.max(1));
        let target_sample = self.target_sample_ns();
        let iters_per_sample = (target_sample / per_iter.max(1)).clamp(1, 1_000_000_000) as u64;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let mut elapsed = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let start = Instant::now();
                let output = black_box(routine(input));
                elapsed += start.elapsed();
                drop(output);
            }
            self.samples.push(elapsed / iters_per_sample as u32);
        }
        self.samples.sort_unstable();
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn format_throughput(throughput: Throughput, per_iter: Duration) -> String {
    let (count, unit) = match throughput {
        Throughput::Elements(n) => (n, "elem"),
        Throughput::Bytes(n) => (n, "B"),
    };
    let secs = per_iter.as_secs_f64();
    if secs <= 0.0 {
        return String::new();
    }
    let rate = count as f64 / secs;
    if rate >= 1e9 {
        format!("{:.4} G{unit}/s", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.4} M{unit}/s", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.4} K{unit}/s", rate / 1e3)
    } else {
        format!("{rate:.4} {unit}/s")
    }
}

/// A named collection of related benchmarks sharing throughput and
/// sample-count settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the element/byte count one iteration processes.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs `body` as the benchmark `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_name = format!("{}/{}", self.name, id.into_benchmark_id());
        let sample_size = if self.criterion.quick {
            self.sample_size.min(10)
        } else {
            self.sample_size
        };
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            quick: self.criterion.quick,
            sample_size,
            samples: Vec::new(),
        };
        body(&mut bencher);
        self.criterion.report(&full_name, self.throughput, &bencher);
        self
    }

    /// Runs `body` with `input`, as the benchmark `id` in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| body(b, input))
    }

    /// Ends the group (report lines are emitted eagerly; this is a
    /// no-op kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// One reported benchmark measurement, as registered for JSON export.
#[derive(Debug, Clone)]
struct BenchRecord {
    name: String,
    min_ns: u128,
    median_ns: u128,
    max_ns: u128,
    /// Elements per iteration, when the group declared a throughput.
    elements: Option<u64>,
}

/// Process-global registry of reported measurements, drained by
/// [`write_json_results`].
static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Writes every benchmark reported so far to the file named by the
/// `CRITERION_JSON_OUT` environment variable, as a single JSON document
/// `{"benchmarks": [{name, median_ns, min_ns, max_ns, elements,
/// melem_per_s}, …]}`, and appends the same document as one line to the
/// file named by `CRITERION_RUNS_LOG` (the multi-run JSONL sidecar that
/// `bench_report` aggregates into median-of-medians — see the dcs-bench
/// README). Each is a no-op when its variable is unset. Called by
/// `criterion_main!` after all groups run; callable directly from
/// custom harness mains.
pub fn write_json_results() {
    let out_path = std::env::var("CRITERION_JSON_OUT").ok();
    let log_path = std::env::var("CRITERION_RUNS_LOG").ok();
    if out_path.is_none() && log_path.is_none() {
        return;
    }
    let records = match RESULTS.lock() {
        Ok(guard) => guard.clone(),
        Err(poisoned) => poisoned.into_inner().clone(),
    };
    let document = render_json(&records);
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, format!("{document}\n")) {
            eprintln!("criterion: cannot write {path}: {e}");
        }
    }
    if let Some(path) = log_path {
        use std::io::Write;
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| writeln!(f, "{document}"));
        if let Err(e) = appended {
            eprintln!("criterion: cannot append to {path}: {e}");
        }
    }
}

/// Renders reported measurements as the export JSON document (one line,
/// no trailing newline).
fn render_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("{\"benchmarks\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let name_escaped: String = r
            .name
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                c => vec![c],
            })
            .collect();
        out.push_str(&format!(
            "{{\"name\":\"{name_escaped}\",\"median_ns\":{},\"min_ns\":{},\"max_ns\":{}",
            r.median_ns, r.min_ns, r.max_ns
        ));
        match r.elements {
            Some(n) => {
                let melem_per_s = if r.median_ns > 0 {
                    n as f64 * 1e3 / r.median_ns as f64
                } else {
                    0.0
                };
                out.push_str(&format!(
                    ",\"elements\":{n},\"melem_per_s\":{melem_per_s:.4}}}"
                ));
            }
            None => out.push_str(",\"elements\":null,\"melem_per_s\":null}"),
        }
    }
    out.push_str("]}");
    out
}

/// Benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
    quick: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut quick = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--quick" => quick = true,
                // Cargo's bench harness protocol flag, plus criterion
                // flags this stand-in accepts but does not implement.
                "--bench" => {}
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            test_mode,
            quick,
            filter,
        }
    }
}

impl Criterion {
    /// Opens a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 20,
            criterion: self,
        }
    }

    /// Runs `body` as a stand-alone benchmark named `name`.
    pub fn bench_function<F>(&mut self, name: &str, body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string())
            .bench_function("base", body);
        self
    }

    fn report(&self, name: &str, throughput: Option<Throughput>, bencher: &Bencher) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            println!("{name}: test mode, ran once");
            return;
        }
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("{name}: no samples collected");
            return;
        }
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let max = samples[samples.len() - 1];
        if let Ok(mut results) = RESULTS.lock() {
            results.push(BenchRecord {
                name: name.to_string(),
                min_ns: min.as_nanos(),
                median_ns: median.as_nanos(),
                max_ns: max.as_nanos(),
                elements: match throughput {
                    Some(Throughput::Elements(n)) => Some(n),
                    _ => None,
                },
            });
        }
        let mut line = format!(
            "{name:<50} time: [{} {} {}]",
            format_duration(min),
            format_duration(median),
            format_duration(max)
        );
        if let Some(tp) = throughput {
            let rate = format_throughput(tp, median);
            if !rate.is_empty() {
                line.push_str(&format!("  thrpt: {rate}"));
            }
        }
        println!("{line}");
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group, then
/// flushing JSON results (see [`write_json_results`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_results();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_example(c: &mut Criterion) {
        let mut group = c.benchmark_group("example");
        group.throughput(Throughput::Elements(64));
        group.sample_size(5);
        group.bench_function("sum", |b| b.iter(|| (0u64..64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("shift", 3), &3u32, |b, &k| {
            b.iter(|| 1u64 << k)
        });
        group.finish();
    }

    #[test]
    fn harness_runs_in_test_mode() {
        let mut criterion = Criterion {
            test_mode: true,
            quick: false,
            filter: None,
        };
        bench_example(&mut criterion);
    }

    #[test]
    fn quick_mode_still_measures() {
        let mut criterion = Criterion {
            test_mode: false,
            quick: true,
            filter: None,
        };
        bench_example(&mut criterion);
        let results = RESULTS.lock().unwrap();
        let sum = results
            .iter()
            .find(|r| r.name == "example/sum")
            .expect("quick mode registers results");
        assert!(sum.median_ns > 0);
        assert_eq!(sum.elements, Some(64));
    }

    #[test]
    fn timed_samples_are_collected_and_sorted() {
        let mut bencher = Bencher {
            test_mode: false,
            quick: true,
            sample_size: 5,
            samples: Vec::new(),
        };
        bencher.iter(|| black_box(17u64).wrapping_mul(31));
        assert_eq!(bencher.samples.len(), 5);
        assert!(bencher.samples.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn batched_samples_time_routine_only() {
        let mut bencher = Bencher {
            test_mode: false,
            quick: true,
            sample_size: 4,
            samples: Vec::new(),
        };
        let mut setups = 0u64;
        bencher.iter_batched(
            || {
                setups += 1;
                vec![1u64; 32]
            },
            |v| v.iter().sum::<u64>(),
            BatchSize::PerIteration,
        );
        assert_eq!(bencher.samples.len(), 4);
        assert!(setups > 4, "one setup per routine call");
        assert!(bencher.samples.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("basic", 3).id, "basic/3");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
    }

    #[test]
    fn render_json_escapes_and_orders_fields() {
        let records = vec![
            BenchRecord {
                name: "group/a\"b".to_string(),
                min_ns: 1,
                median_ns: 2,
                max_ns: 3,
                elements: Some(100),
            },
            BenchRecord {
                name: "group/plain".to_string(),
                min_ns: 4,
                median_ns: 5,
                max_ns: 6,
                elements: None,
            },
        ];
        let doc = render_json(&records);
        assert!(doc.starts_with("{\"benchmarks\":["));
        assert!(doc.ends_with("]}"), "single line, no trailing newline");
        assert!(doc.contains("group/a\\\"b"));
        assert!(doc.contains("\"median_ns\":2"));
        assert!(doc.contains("\"elements\":null,\"melem_per_s\":null"));
        assert!(!doc.contains('\n'));
    }

    #[test]
    fn iter_batched_drops_output_outside_timer() {
        // The routine returns a value whose Drop burns measurable time;
        // excluding it from the timing keeps each sample close to the
        // routine's own (trivial) cost.
        struct SlowDrop;
        impl Drop for SlowDrop {
            fn drop(&mut self) {
                let start = Instant::now();
                while start.elapsed() < Duration::from_micros(200) {
                    std::hint::spin_loop();
                }
            }
        }
        let mut bencher = Bencher {
            test_mode: false,
            quick: true,
            sample_size: 3,
            samples: Vec::new(),
        };
        bencher.iter_batched(|| (), |()| SlowDrop, BatchSize::PerIteration);
        assert_eq!(bencher.samples.len(), 3);
        let median = bencher.samples[1];
        assert!(
            median < Duration::from_micros(100),
            "drop time leaked into the sample: {median:?}"
        );
    }
}
