//! # ddos-streams
//!
//! A from-scratch Rust implementation of **"Streaming Algorithms for
//! Robust, Real-Time Detection of DDoS Attacks"** (Ganguly, Garofalakis,
//! Rastogi, Sabnani — ICDCS 2007): hash-based stream synopses that track
//! the top-k destinations by **number of distinct sources with half-open
//! connections**, over streams of flow updates with both insertions and
//! deletions.
//!
//! The workspace is organized as focused crates, all re-exported here:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `dcs-core` | Distinct-Count Sketch, Tracking DCS, estimators |
//! | [`hash`] | `dcs-hash` | seeded hash families (mixers, multiply-shift, tabulation, geometric) |
//! | [`baselines`] | `dcs-baselines` | exact tracking, FM/HLL, distinct sampling, Count-Min, Space-Saving, superspreaders |
//! | [`streamgen`] | `dcs-streamgen` | Zipf workloads, attack scenarios, trace format |
//! | [`netsim`] | `dcs-netsim` | TCP segments, handshake tracking, routers, DDoS monitor, pipeline |
//! | [`metrics`] | `dcs-metrics` | recall, relative error, timing, result tables |
//! | [`telemetry`] | `dcs-telemetry` | hot-path counters, latency histograms, JSONL snapshot export |
//! | [`persist`] | `dcs-persist` | crash-safe checkpoint/restore: versioned binary codec, atomic file manager |
//!
//! The most common entry points are re-exported at the top level.
//!
//! ## Example: attack vs flash crowd
//!
//! ```
//! use ddos_streams::{DestAddr, SketchConfig, SourceAddr, TrackingDcs};
//!
//! let mut monitor = TrackingDcs::new(SketchConfig::paper_default());
//!
//! // SYN flood: 1000 spoofed sources, none completes the handshake.
//! for s in 0..1000u32 {
//!     monitor.insert(SourceAddr(s), DestAddr(80));
//! }
//! // Flash crowd: 1500 legitimate clients, all complete (ACK ⇒ delete).
//! for s in 10_000..11_500u32 {
//!     monitor.insert(SourceAddr(s), DestAddr(443));
//!     monitor.delete(SourceAddr(s), DestAddr(443));
//! }
//!
//! let top = monitor.track_top_k(1, 0.25);
//! assert_eq!(top.entries[0].group, 80); // the flood, not the crowd
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dcs_baselines as baselines;
pub use dcs_core as core;
pub use dcs_hash as hash;
pub use dcs_metrics as metrics;
pub use dcs_netsim as netsim;
pub use dcs_persist as persist;
pub use dcs_streamgen as streamgen;
pub use dcs_telemetry as telemetry;

pub use dcs_core::{
    Delta, DestAddr, DistinctCountSketch, FlowKey, FlowUpdate, GroupBy, SketchConfig, SketchError,
    SourceAddr, TopKEntry, TopKEstimate, TrackingDcs,
};
pub use dcs_netsim::{AlarmPolicy, DdosMonitor, EdgeRouter, HandshakeTracker, TcpSegment};
pub use dcs_persist::{Checkpoint, CheckpointManager, PersistError};
pub use dcs_streamgen::{PaperWorkload, ScenarioBuilder, WorkloadConfig};
