//! `dcsmon` — command-line front end for the Distinct-Count Sketch
//! toolkit.
//!
//! ```console
//! $ dcsmon generate --output flows.dcs --pairs 100000 --dests 500 --skew 1.5
//! $ dcsmon attack   --output attack.dcs --victim 10.0.0.9 --sources 2000 --background 5000
//! $ dcsmon topk     --input attack.dcs --k 5
//! $ dcsmon monitor  --input attack.dcs --threshold 500
//! $ dcsmon stats    --input attack.dcs
//! ```
//!
//! Traces use the 9-byte binary format of `dcs-streamgen::trace`.

use std::net::Ipv4Addr;
use std::process::ExitCode;

use ddos_streams::baselines::ExactDistinctTracker;
use ddos_streams::streamgen::{decode_trace, encode_trace};
use ddos_streams::{
    AlarmPolicy, DdosMonitor, DestAddr, GroupBy, PaperWorkload, ScenarioBuilder, SketchConfig,
    TrackingDcs, WorkloadConfig,
};

/// Minimal `--flag value` argument extraction.
struct Args {
    raw: Vec<String>,
}

impl Args {
    fn parse() -> (Option<String>, Args) {
        let mut raw: Vec<String> = std::env::args().skip(1).collect();
        let command = if raw.first().is_some_and(|a| !a.starts_with("--")) {
            Some(raw.remove(0))
        } else {
            None
        };
        (command, Args { raw })
    }

    fn value(&self, flag: &str) -> Option<&str> {
        self.raw
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.raw.get(i + 1))
            .map(String::as_str)
    }

    fn number<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, String> {
        match self.value(flag) {
            None => Ok(default),
            Some(text) => text
                .parse()
                .map_err(|_| format!("{flag}: cannot parse {text:?}")),
        }
    }

    fn ipv4(&self, flag: &str, default: Ipv4Addr) -> Result<Ipv4Addr, String> {
        match self.value(flag) {
            None => Ok(default),
            Some(text) => text
                .parse()
                .map_err(|_| format!("{flag}: {text:?} is not an IPv4 address")),
        }
    }

    fn required(&self, flag: &str) -> Result<&str, String> {
        self.value(flag).ok_or_else(|| format!("missing {flag}"))
    }
}

const USAGE: &str = "\
dcsmon — distinct-count sketch DDoS monitoring toolkit

USAGE:
  dcsmon generate --output <file> [--pairs N] [--dests N] [--skew Z] [--seed S]
      Write a Zipfian flow-update trace (the paper's synthetic workload).

  dcsmon attack --output <file> [--victim IP] [--sources N] [--background N]
                [--flash IP] [--clients N] [--seed S]
      Write an attack scenario: background + SYN flood (+ optional flash crowd).

  dcsmon topk --input <file> [--k N] [--buckets S] [--seed S] [--by-source]
              [--shards N] [--query IP[,IP...]]
      Replay a trace into a Tracking Distinct-Count Sketch; print the top-k
      groups with Poisson error bars. With --shards > 1 the replay runs
      through the lock-free per-core ingest engine (bit-identical result).
      --query adds point-query estimates for the listed groups, answered
      from one shared distinct sample (one sketch scan for all of them).

  dcsmon monitor --input <file> [--threshold N] [--every N] [--buckets S]
      Replay with periodic alarm evaluation; print raised alarms.

  dcsmon stats --input <file> [--buckets S]
      Trace statistics: updates, net count, exact vs sketch-estimated
      distinct pairs and top destination.

  dcsmon hierarchy --input <file> [--k N] [--buckets S]
      Top-k at host, /24, and /16 destination granularity, plus the
      finest granularity crossing --threshold (default 500).

  dcsmon compare --input <file> [--k N]
      Run the Distinct-Count Sketch, an insert-only per-destination FM
      baseline, and the exact tracker over the trace; print their
      top-k side by side.

  dcsmon timeline --output <file> [--victim IP] [--peak N] [--seed S]
      Write a *timed* trace: calm background, then a flood ramping to
      --peak sources/tick, plus a low-rate pulse attack.

  dcsmon replay --input <timed-file> [--threshold N] [--every TICKS]
      Replay a timed trace against the monitor, evaluating every
      --every ticks; print the time-stamped alarm timeline.
";

fn main() -> ExitCode {
    let (command, args) = Args::parse();
    let result = match command.as_deref() {
        Some("generate") => cmd_generate(&args),
        Some("attack") => cmd_attack(&args),
        Some("topk") => cmd_topk(&args),
        Some("monitor") => cmd_monitor(&args),
        Some("stats") => cmd_stats(&args),
        Some("hierarchy") => cmd_hierarchy(&args),
        Some("timeline") => cmd_timeline(&args),
        Some("replay") => cmd_replay(&args),
        Some("compare") => cmd_compare(&args),
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn read_trace(args: &Args) -> Result<Vec<ddos_streams::FlowUpdate>, String> {
    let path = args.required("--input")?;
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    decode_trace(&bytes).map_err(|e| format!("decoding {path}: {e}"))
}

fn sketch_config(args: &Args, group_by: GroupBy) -> Result<SketchConfig, String> {
    SketchConfig::builder()
        .buckets_per_table(args.number("--buckets", 1024usize)?)
        .seed(args.number("--seed", 0u64)?)
        .group_by(group_by)
        .build()
        .map_err(|e| e.to_string())
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let output = args.required("--output")?;
    let config = WorkloadConfig {
        distinct_pairs: args.number("--pairs", 100_000u64)?,
        num_destinations: args.number("--dests", 1_000u32)?,
        skew: args.number("--skew", 1.0f64)?,
        seed: args.number("--seed", 0u64)?,
    };
    let workload = PaperWorkload::generate(config.clone());
    let bytes = encode_trace(workload.updates());
    std::fs::write(output, &bytes).map_err(|e| format!("writing {output}: {e}"))?;
    println!(
        "wrote {output}: {} updates ({} distinct pairs, {} destinations, z = {}), {:.2} MB",
        workload.updates().len(),
        config.distinct_pairs,
        config.num_destinations,
        config.skew,
        bytes.len() as f64 / 1e6
    );
    Ok(())
}

fn cmd_attack(args: &Args) -> Result<(), String> {
    let output = args.required("--output")?;
    let victim = args.ipv4("--victim", Ipv4Addr::new(10, 0, 0, 9))?;
    let sources = args.number("--sources", 2_000u32)?;
    let background = args.number("--background", 5_000u32)?;
    let seed = args.number("--seed", 0u64)?;
    let mut builder = ScenarioBuilder::new(seed)
        .background(background, 100, 0.9)
        .syn_flood(u32::from(victim), sources);
    if let Some(flash) = args.value("--flash") {
        let flash: Ipv4Addr = flash
            .parse()
            .map_err(|_| format!("--flash: {flash:?} is not an IPv4 address"))?;
        let clients = args.number("--clients", 3_000u32)?;
        builder = builder.flash_crowd(u32::from(flash), clients, 0.97);
    }
    let scenario = builder.build();
    let bytes = encode_trace(scenario.updates());
    std::fs::write(output, &bytes).map_err(|e| format!("writing {output}: {e}"))?;
    println!(
        "wrote {output}: {} updates; victim {victim} has {} half-open sources at end of trace",
        scenario.updates().len(),
        scenario.half_open(u32::from(victim))
    );
    Ok(())
}

fn cmd_topk(args: &Args) -> Result<(), String> {
    let updates = read_trace(args)?;
    let k = args.number("--k", 10usize)?;
    let group_by =
        if args.value("--by-source").is_some() || args.raw.iter().any(|a| a == "--by-source") {
            GroupBy::Source
        } else {
            GroupBy::Destination
        };
    let shards = args.number("--shards", 1usize)?;
    let sketch = if shards > 1 {
        ddos_streams::netsim::ingest_sharded(&updates, sketch_config(args, group_by)?, shards)
            .map_err(|e| format!("merging shard partials: {e}"))?
    } else {
        let mut sketch = TrackingDcs::new(sketch_config(args, group_by)?);
        for u in &updates {
            sketch.update(*u);
        }
        sketch
    };
    let top = sketch.track_top_k(k, 0.25);
    println!(
        "top-{k} {}s by distinct half-open {} (sample {} at level {}):",
        group_by,
        match group_by {
            GroupBy::Destination => "sources",
            _ => "peers",
        },
        top.sample_size,
        top.sample_level
    );
    for (group, estimate, sigma) in top.with_error_bars() {
        println!("  {:<15}  ≈ {estimate} ± {sigma:.0}", Ipv4Addr::from(group));
    }
    if let Some(list) = args.value("--query") {
        let groups: Vec<u32> = list
            .split(',')
            .map(|text| {
                text.trim()
                    .parse::<Ipv4Addr>()
                    .map(u32::from)
                    .map_err(|_| format!("--query: {text:?} is not an IPv4 address"))
            })
            .collect::<Result<_, _>>()?;
        // One batched call: a single distinct-sample scan answers
        // every listed group, instead of one full sketch scan each.
        let estimates = sketch.sketch().estimate_group_frequencies(&groups, 0.25);
        println!(
            "point queries ({} groups, one shared sample):",
            groups.len()
        );
        for (group, estimate) in groups.iter().zip(&estimates) {
            println!("  {:<15}  ≈ {estimate}", Ipv4Addr::from(*group));
        }
    }
    Ok(())
}

fn cmd_monitor(args: &Args) -> Result<(), String> {
    let updates = read_trace(args)?;
    let threshold = args.number("--threshold", 1_000u64)?;
    let every = args.number("--every", 10_000u64)?.max(1);
    let mut monitor = DdosMonitor::new(
        sketch_config(args, GroupBy::Destination)?,
        AlarmPolicy {
            absolute_threshold: threshold,
            ..AlarmPolicy::default()
        },
    );
    let mut alarms_total = 0usize;
    for (i, u) in updates.iter().enumerate() {
        monitor.ingest_one(*u);
        if (i as u64 + 1).is_multiple_of(every) {
            for alarm in monitor.evaluate() {
                alarms_total += 1;
                println!(
                    "ALARM after {} updates: {} ≈ {} distinct half-open sources ({:?})",
                    i + 1,
                    DestAddr(alarm.dest),
                    alarm.estimated_frequency,
                    alarm.reason
                );
            }
        }
    }
    for alarm in monitor.evaluate() {
        alarms_total += 1;
        println!(
            "ALARM at end of trace: {} ≈ {} ({:?})",
            DestAddr(alarm.dest),
            alarm.estimated_frequency,
            alarm.reason
        );
    }
    println!(
        "processed {} updates, {} alarms (threshold {threshold})",
        updates.len(),
        alarms_total
    );
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let updates = read_trace(args)?;
    let inserts = updates
        .iter()
        .filter(|u| u.delta == ddos_streams::Delta::Insert)
        .count();
    let mut exact = ExactDistinctTracker::new(GroupBy::Destination);
    let mut sketch = TrackingDcs::new(sketch_config(args, GroupBy::Destination)?);
    for u in &updates {
        exact.update(*u);
        sketch.update(*u);
    }
    println!("updates:            {}", updates.len());
    println!(
        "inserts / deletes:  {} / {}",
        inserts,
        updates.len() - inserts
    );
    println!("distinct pairs:     {} (exact)", exact.distinct_pairs());
    println!(
        "                    {} (sketch estimate)",
        sketch.estimate_distinct_pairs(0.25)
    );
    println!("active groups:      {}", exact.num_groups());
    if let Some(&(dest, freq)) = exact.top_k(1).first() {
        let est = sketch
            .track_top_k(1, 0.25)
            .frequency_of(dest)
            .unwrap_or_else(|| sketch.track_top_k(1, 0.25).entries[0].estimated_frequency);
        println!(
            "top destination:    {} — {} distinct sources exact, ≈{} sketch",
            DestAddr(dest),
            freq,
            est
        );
    }
    println!(
        "sketch memory:      {:.2} MB (exact tracker: {:.2} MB)",
        sketch.heap_bytes() as f64 / 1e6,
        exact.heap_bytes() as f64 / 1e6
    );
    Ok(())
}

fn cmd_hierarchy(args: &Args) -> Result<(), String> {
    use ddos_streams::netsim::hierarchy::HierarchicalTracker;
    let updates = read_trace(args)?;
    let k = args.number("--k", 5usize)?;
    let threshold = args.number("--threshold", 500u64)?;
    let mut tracker = HierarchicalTracker::new(sketch_config(args, GroupBy::Destination)?)
        .map_err(|e| e.to_string())?;
    for u in &updates {
        tracker.update(*u);
    }
    println!("host view:\n{}", tracker.host_top_k(k, 0.25));
    println!("/24 view:\n{}", tracker.prefix24_top_k(k, 0.25));
    println!("/16 view:\n{}", tracker.prefix16_top_k(k, 0.25));
    match tracker.locate(threshold, 0.25) {
        Some((granularity, group, estimate)) => println!(
            "finest granularity over {threshold}: {granularity:?} {} ≈ {estimate}",
            Ipv4Addr::from(group)
        ),
        None => println!("no granularity crosses {threshold}"),
    }
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    use ddos_streams::baselines::PerGroupFm;
    let updates = read_trace(args)?;
    let k = args.number("--k", 5usize)?;
    let mut sketch = TrackingDcs::new(sketch_config(args, GroupBy::Destination)?);
    let mut fm = PerGroupFm::new(32, args.number("--seed", 0u64)?);
    let mut exact = ExactDistinctTracker::new(GroupBy::Destination);
    for u in &updates {
        sketch.update(*u);
        fm.add(u.key.dest().0, u.key.packed());
        exact.update(*u);
    }
    println!("exact (net half-open):");
    for (dest, freq) in exact.top_k(k) {
        println!("  {:<15} {freq}", Ipv4Addr::from(dest));
    }
    println!("\ndistinct-count sketch (handles deletions):");
    print!("{}", sketch.track_top_k(k, 0.25));
    println!("\ninsert-only per-destination FM (cannot discount):");
    for (dest, est) in fm.top_k(k) {
        println!("  {:<15} ≈ {est:.0}", Ipv4Addr::from(dest));
    }
    println!(
        "\nmemory: sketch {:.2} MB, FM {:.2} MB, exact {:.2} MB",
        sketch.heap_bytes() as f64 / 1e6,
        fm.heap_bytes() as f64 / 1e6,
        exact.heap_bytes() as f64 / 1e6
    );
    Ok(())
}

fn cmd_timeline(args: &Args) -> Result<(), String> {
    use ddos_streams::streamgen::encode_timed_trace;
    use ddos_streams::streamgen::timeline::TimelineBuilder;
    let output = args.required("--output")?;
    let victim = args.ipv4("--victim", Ipv4Addr::new(10, 0, 0, 9))?;
    let peak = args.number("--peak", 30u32)?;
    let seed = args.number("--seed", 0u64)?;
    let timeline = TimelineBuilder::new(seed)
        .steady_background(500, 15, 8, 0.92)
        .ramp_flood(u32::from(victim), 200, peak)
        .pulse_attack(u32::from(victim).wrapping_add(1), 3, 100, 5, 150)
        .build();
    let bytes = encode_timed_trace(timeline.updates());
    std::fs::write(output, &bytes).map_err(|e| format!("writing {output}: {e}"))?;
    println!(
        "wrote {output}: {} timed updates over {} ticks (flood ramps to {peak}/tick at {victim})",
        timeline.updates().len(),
        timeline.end()
    );
    Ok(())
}

fn cmd_replay(args: &Args) -> Result<(), String> {
    use ddos_streams::streamgen::decode_timed_trace;
    let path = args.required("--input")?;
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    let timed = decode_timed_trace(&bytes).map_err(|e| format!("decoding {path}: {e}"))?;
    let threshold = args.number("--threshold", 500u64)?;
    let every = args.number("--every", 50u64)?.max(1);
    let mut monitor = DdosMonitor::new(
        sketch_config(args, GroupBy::Destination)?,
        AlarmPolicy {
            absolute_threshold: threshold,
            ..AlarmPolicy::default()
        },
    );
    let mut next_eval = every;
    let mut events_total = 0usize;
    for t in &timed {
        while t.at >= next_eval {
            for event in monitor.evaluate_events() {
                events_total += 1;
                match event {
                    ddos_streams::netsim::AlarmEvent::Raised(alarm) => println!(
                        "[t={next_eval}] RAISED  {} ≈ {} ({:?})",
                        DestAddr(alarm.dest),
                        alarm.estimated_frequency,
                        alarm.reason
                    ),
                    ddos_streams::netsim::AlarmEvent::Cleared {
                        dest,
                        estimated_frequency,
                        ..
                    } => println!(
                        "[t={next_eval}] CLEARED {} ≈ {estimated_frequency}",
                        DestAddr(dest)
                    ),
                }
            }
            next_eval += every;
        }
        monitor.ingest_one(t.update);
    }
    for event in monitor.evaluate_events() {
        events_total += 1;
        if let ddos_streams::netsim::AlarmEvent::Raised(alarm) = event {
            println!(
                "[end] RAISED  {} ≈ {} ({:?})",
                DestAddr(alarm.dest),
                alarm.estimated_frequency,
                alarm.reason
            );
        }
    }
    println!(
        "replayed {} updates; {} alarm events; currently alarmed: {:?}",
        timed.len(),
        events_total,
        monitor
            .active_alarms()
            .into_iter()
            .map(|d| DestAddr(d).to_string())
            .collect::<Vec<_>>()
    );
    Ok(())
}
