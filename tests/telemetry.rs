//! Integration tests for the telemetry layer: snapshot contents after
//! scripted insert/delete churn, JSONL schema conformance, the
//! snapshot-ahead rejection, and the feature-gated recorder's
//! all-or-nothing behavior (`--features telemetry` fills counters and
//! latency summaries; the default build's no-op recorder contributes
//! nothing).

use dcs_core::{DestAddr, DistinctCountSketch, SketchConfig, SketchError, SourceAddr, TrackingDcs};
use dcs_telemetry::{validate_line, JsonlExporter, TelemetrySnapshot};

fn config(seed: u64) -> SketchConfig {
    SketchConfig::builder()
        .buckets_per_table(256)
        .seed(seed)
        .build()
        .expect("valid config")
}

/// Scripted churn: 600 inserts across 3 destinations, then 150 paired
/// deletions. Net distinct pairs: 450.
fn churned_tracking() -> TrackingDcs {
    let mut sketch = TrackingDcs::new(config(17));
    for s in 0..600u32 {
        sketch.insert(SourceAddr(s), DestAddr(s % 3));
    }
    for s in 0..150u32 {
        sketch.delete(SourceAddr(s), DestAddr(s % 3));
    }
    sketch
}

#[test]
fn tracking_snapshot_gauges_match_sketch_state() {
    let sketch = churned_tracking();
    let snap = sketch.telemetry_snapshot("churn");

    assert_eq!(snap.label, "churn");
    assert_eq!(snap.updates_processed, 750);
    assert_eq!(snap.net_updates, 450);
    assert!(!snap.levels.is_empty(), "churn populates levels");

    // Levels arrive strictly ascending, and the tracking gauges agree
    // with the sketch's own per-level singleton accounting.
    let mut prev = None;
    for gauges in &snap.levels {
        assert!(prev.is_none_or(|p| p < gauges.level), "ascending levels");
        prev = Some(gauges.level);
        assert_eq!(
            gauges.tracked_singletons,
            sketch.num_singletons(gauges.level) as u64,
            "level {}",
            gauges.level
        );
    }
    let tracked_total: u64 = snap.levels.iter().map(|g| g.tracked_singletons).sum();
    assert!(tracked_total > 0, "churn leaves live singletons");

    // Deletion churn exercises the heap adjust path, whose bookkeeping
    // is always on (not gated by the telemetry feature).
    assert_eq!(
        snap.counters.get("heap_adjust").copied(),
        Some(sketch.heap_adjusts())
    );
    assert!(sketch.heap_adjusts() > 0);
    // Clean paired deletions never clamp.
    assert!(!snap.counters.contains_key("heap_underflow_clamp"));
    assert!(!snap.counters.contains_key("heap_overflow_clamp"));
    assert_eq!(sketch.heap_overflows(), 0);
}

#[test]
fn snapshot_serializes_to_valid_jsonl() {
    let sketch = churned_tracking();
    let line = sketch.telemetry_snapshot("jsonl").to_jsonl();
    validate_line(&line).expect("snapshot conforms to its own schema");

    // Round-trip through the exporter too.
    let path = std::env::temp_dir().join(format!("dcs_telemetry_it_{}.jsonl", std::process::id()));
    let mut exporter = JsonlExporter::create(&path).expect("create sidecar");
    exporter
        .append(&sketch.telemetry_snapshot("first"))
        .expect("append");
    exporter
        .append(&sketch.telemetry_snapshot("second"))
        .expect("append");
    let contents = std::fs::read_to_string(&path).expect("read back");
    let _ = std::fs::remove_file(&path);
    let lines: Vec<&str> = contents.lines().collect();
    assert_eq!(lines.len(), 2);
    for line in &lines {
        validate_line(line).expect("exported line validates");
    }
    // The exporter stamps monotonically increasing sequence numbers.
    assert!(lines[0].contains("\"sequence\":0"));
    assert!(lines[1].contains("\"sequence\":1"));
}

#[test]
fn difference_rejects_snapshot_ahead_of_sketch() {
    let mut sketch = DistinctCountSketch::new(config(23));
    for s in 0..100u32 {
        sketch.insert(SourceAddr(s), DestAddr(1));
    }
    let snapshot = sketch.clone();
    for s in 100..120u32 {
        sketch.insert(SourceAddr(s), DestAddr(2));
    }

    // Forward direction still works.
    let recent = sketch.difference(&snapshot).expect("valid window");
    assert_eq!(recent.updates_processed(), 20);

    // The swapped direction is a hard error, not a silent clamp to an
    // empty window (the pre-fix behavior under saturating_sub).
    match snapshot.difference(&sketch) {
        Err(SketchError::SnapshotAhead {
            snapshot_updates,
            current_updates,
        }) => {
            assert_eq!(snapshot_updates, 120);
            assert_eq!(current_updates, 100);
        }
        other => panic!("expected SnapshotAhead, got {other:?}"),
    }

    // With recording compiled in, the rejection leaves counter evidence.
    #[cfg(feature = "telemetry")]
    {
        let snap = snapshot.telemetry_snapshot("rejected");
        assert_eq!(snap.counters.get("snapshot_ahead_rejected"), Some(&1));
    }
}

#[cfg(feature = "telemetry")]
#[test]
fn enabled_recorder_fills_counters_and_latencies() {
    // Screen/decode counters live on the *tracking* hot path
    // (`screened_apply`), so exercise a TrackingDcs here.
    let mut sketch = TrackingDcs::new(config(29));
    for s in 0..500u32 {
        sketch.insert(SourceAddr(s), DestAddr(s % 5));
    }
    let _ = sketch.track_top_k(3, 0.25);
    let snap = sketch.telemetry_snapshot("enabled");

    let screen_total: u64 = snap
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("screen_"))
        .map(|(_, v)| v)
        .sum();
    assert!(
        screen_total > 0,
        "screen counters recorded: {:?}",
        snap.counters
    );
    let update = snap.update_latency.as_ref().expect("update latency");
    assert_eq!(update.count, 500);
    assert!(update.max_micros >= update.p50_micros);
    let query = snap.query_latency.as_ref().expect("query latency");
    assert_eq!(query.count, 1);

    validate_line(&snap.to_jsonl()).expect("enabled snapshot validates");
}

#[cfg(not(feature = "telemetry"))]
#[test]
fn disabled_recorder_compiles_to_an_empty_snapshot() {
    let mut sketch = DistinctCountSketch::new(config(29));
    for s in 0..500u32 {
        sketch.insert(SourceAddr(s), DestAddr(s % 5));
    }
    let _ = sketch.estimate_top_k(3, 0.25);
    let snap = sketch.telemetry_snapshot("disabled");

    // Gauges derive from sketch state and survive; everything the
    // recorder owns is absent.
    assert!(!snap.levels.is_empty());
    assert!(
        snap.counters.is_empty(),
        "no-op recorder: {:?}",
        snap.counters
    );
    assert!(snap.update_latency.is_none());
    assert!(snap.query_latency.is_none());
    validate_line(&snap.to_jsonl()).expect("empty snapshot still validates");
}

#[test]
fn fresh_snapshot_is_minimal_and_valid() {
    let snap = TelemetrySnapshot::new("fresh");
    assert_eq!(snap.updates_processed, 0);
    assert!(snap.levels.is_empty());
    validate_line(&snap.to_jsonl()).expect("minimal snapshot validates");
}

#[cfg(feature = "telemetry")]
#[test]
fn update_batch_records_each_update_once_and_each_batch_once() {
    // Batch accounting must not double-count whichever plan
    // `update_batch` auto-selects: exactly one amortized latency sample
    // per update (never one from the batch timer *and* one from the
    // per-update timer) and exactly one batch-size observation per
    // call. Exercise both sides of the dispatch cutoff, plus the
    // per-update path for contrast, on both sketch flavors.
    use dcs_core::BATCH_MIN_ROUTED;

    let small = BATCH_MIN_ROUTED - 1; // scalar-loop plan
    let large = 3 * BATCH_MIN_ROUTED; // routed plan
    let updates: Vec<_> = (0..large as u32)
        .map(|s| dcs_core::FlowUpdate::insert(SourceAddr(s), DestAddr(s % 7)))
        .collect();

    let mut sketch = DistinctCountSketch::new(config(31));
    sketch.update_batch(&updates[..small]);
    sketch.update_batch(&updates);
    let snap = sketch.telemetry_snapshot("batched");
    let latency = snap.update_latency.expect("latency recorded");
    assert_eq!(
        latency.count,
        (small + large) as u64,
        "one amortized latency sample per update across both plans"
    );
    let batches = snap.batch_size.expect("batch sizes recorded");
    assert_eq!(batches.count, 2, "one size observation per call");
    assert_eq!(batches.max, large as u64);

    // The per-update path records one (unamortized) sample per call and
    // no batch-size observation.
    let mut sketch = DistinctCountSketch::new(config(31));
    for u in &updates {
        sketch.update(*u);
    }
    let snap = sketch.telemetry_snapshot("per-update");
    assert_eq!(snap.update_latency.expect("recorded").count, large as u64);
    assert!(snap.batch_size.is_none(), "no batch was ever ingested");

    // Same contract on the tracking flavor (its update_batch wraps the
    // screened path).
    let mut sketch = TrackingDcs::new(config(31));
    sketch.update_batch(&updates[..small]);
    sketch.update_batch(&updates);
    let snap = sketch.telemetry_snapshot("tracking-batched");
    assert_eq!(
        snap.update_latency.expect("recorded").count,
        (small + large) as u64
    );
    assert_eq!(snap.batch_size.expect("recorded").count, 2);
}
