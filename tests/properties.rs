//! Cross-crate property-based tests of the invariants the paper's
//! lemmas rest on.

use proptest::prelude::*;
use std::collections::HashMap;

use ddos_streams::baselines::ExactDistinctTracker;
use ddos_streams::{
    Delta, DestAddr, DistinctCountSketch, FlowUpdate, GroupBy, SketchConfig, SourceAddr,
    TrackingDcs,
};

fn config(seed: u64) -> SketchConfig {
    SketchConfig::builder()
        .buckets_per_table(64)
        .seed(seed)
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Delete-resilience (§3): a sketch that saw extra pairs, all later
    /// deleted, answers identically to one that never saw them.
    #[test]
    fn deleted_pairs_leave_no_trace(
        seed in 0u64..100,
        keep in proptest::collection::hash_set((0u32..1000, 0u32..20), 1..60),
        churn in proptest::collection::hash_set((1000u32..2000, 0u32..20), 0..60),
    ) {
        let mut clean = DistinctCountSketch::new(config(seed));
        let mut noisy = DistinctCountSketch::new(config(seed));
        for &(s, d) in &keep {
            clean.insert(SourceAddr(s), DestAddr(d));
            noisy.insert(SourceAddr(s), DestAddr(d));
        }
        for &(s, d) in &churn {
            noisy.insert(SourceAddr(s), DestAddr(d));
        }
        for &(s, d) in &churn {
            noisy.delete(SourceAddr(s), DestAddr(d));
        }
        prop_assert_eq!(
            clean.distinct_sample(0.25),
            noisy.distinct_sample(0.25)
        );
        prop_assert_eq!(
            clean.estimate_top_k(5, 0.25),
            noisy.estimate_top_k(5, 0.25)
        );
    }

    /// Streams strictly below the sample target `(1+ε)s/16 = 5` are
    /// answered exactly: the sampling loop can never stop above level 0,
    /// every pair is recovered, and the scale is 1.
    #[test]
    fn small_streams_are_exact(
        seed in 0u64..100,
        pairs in proptest::collection::hash_set((0u32..100_000, 0u32..5), 1..5),
    ) {
        let mut sketch = DistinctCountSketch::new(config(seed));
        let mut exact = ExactDistinctTracker::new(GroupBy::Destination);
        for &(s, d) in &pairs {
            sketch.insert(SourceAddr(s), DestAddr(d));
            exact.insert(SourceAddr(s), DestAddr(d));
        }
        let est = sketch.estimate_top_k(5, 0.25);
        prop_assert_eq!(est.scale, 1, "tiny stream must resolve at level 0");
        let truth = exact.top_k(5);
        let approx: Vec<(u32, u64)> = est
            .entries
            .iter()
            .map(|e| (e.group, e.estimated_frequency))
            .collect();
        prop_assert_eq!(approx, truth);
    }

    /// Tracking and Basic agree after arbitrary well-formed streams.
    #[test]
    fn estimators_agree_on_well_formed_streams(
        seed in 0u64..100,
        ops in proptest::collection::vec((0u32..200, 0u32..10, any::<bool>()), 1..300),
    ) {
        let mut basic = DistinctCountSketch::new(config(seed));
        let mut tracking = TrackingDcs::new(config(seed));
        let mut net: HashMap<(u32, u32), i64> = HashMap::new();
        for (s, d, del) in ops {
            let entry = net.entry((s, d)).or_insert(0);
            let update = if del && *entry > 0 {
                *entry -= 1;
                FlowUpdate::new(SourceAddr(s), DestAddr(d), Delta::Delete)
            } else {
                *entry += 1;
                FlowUpdate::new(SourceAddr(s), DestAddr(d), Delta::Insert)
            };
            basic.update(update);
            tracking.update(update);
        }
        prop_assert_eq!(
            basic.estimate_top_k(10, 0.25),
            tracking.track_top_k(10, 0.25)
        );
    }

    /// Merging a partition of a stream equals processing it whole.
    #[test]
    fn merge_of_partition_equals_whole(
        seed in 0u64..100,
        pairs in proptest::collection::hash_set((0u32..10_000, 0u32..30), 2..100,),
        split in any::<u64>(),
    ) {
        let mut whole = DistinctCountSketch::new(config(seed));
        let mut left = DistinctCountSketch::new(config(seed));
        let mut right = DistinctCountSketch::new(config(seed));
        for (i, &(s, d)) in pairs.iter().enumerate() {
            whole.insert(SourceAddr(s), DestAddr(d));
            if (split >> (i % 64)) & 1 == 0 {
                left.insert(SourceAddr(s), DestAddr(d));
            } else {
                right.insert(SourceAddr(s), DestAddr(d));
            }
        }
        left.merge_from(&right).unwrap();
        prop_assert_eq!(
            whole.estimate_top_k(5, 0.25),
            left.estimate_top_k(5, 0.25)
        );
    }

    /// Orientation soundness: each grouping axis reports only groups
    /// that exist on that axis, and (when the sample resolved at level
    /// 0, where it is a subset of the true distinct pairs) never
    /// overestimates a group's true frequency.
    #[test]
    fn orientation_soundness(
        seed in 0u64..100,
        pairs in proptest::collection::hash_set((0u32..500, 0u32..500), 1..100),
    ) {
        let dest_config = SketchConfig::builder()
            .buckets_per_table(64)
            .seed(seed)
            .group_by(GroupBy::Destination)
            .build()
            .unwrap();
        let src_config = SketchConfig::builder()
            .buckets_per_table(64)
            .seed(seed)
            .group_by(GroupBy::Source)
            .build()
            .unwrap();
        let mut by_dest = DistinctCountSketch::new(dest_config);
        let mut by_source = DistinctCountSketch::new(src_config);
        // Truth: frequency of each `b` value on its respective axis.
        let mut truth: HashMap<u32, u64> = HashMap::new();
        for &(a, b) in &pairs {
            by_dest.insert(SourceAddr(a), DestAddr(b));
            // Swapped roles: the pair (b, a), grouped by source.
            by_source.insert(SourceAddr(b), DestAddr(a));
            *truth.entry(b).or_insert(0) += 1;
        }
        for est in [by_dest.estimate_top_k(5, 0.25), by_source.estimate_top_k(5, 0.25)] {
            for entry in &est.entries {
                let t = truth.get(&entry.group).copied();
                prop_assert!(t.is_some(), "phantom group {}", entry.group);
                if est.scale == 1 {
                    // Level-0 samples are subsets of the true pairs:
                    // counts can only undercount.
                    prop_assert!(
                        entry.estimated_frequency <= t.unwrap(),
                        "group {} overestimated: {} > {:?}",
                        entry.group,
                        entry.estimated_frequency,
                        t
                    );
                }
            }
        }
    }

    /// The tracked singleton structures always match a fresh scan.
    #[test]
    fn tracking_invariants_hold_after_random_streams(
        seed in 0u64..50,
        pairs in proptest::collection::vec((0u32..300, 0u32..8), 1..150),
    ) {
        let mut tracking = TrackingDcs::new(config(seed));
        let mut net: HashMap<(u32, u32), i64> = HashMap::new();
        for (i, &(s, d)) in pairs.iter().enumerate() {
            let entry = net.entry((s, d)).or_insert(0);
            if i % 3 == 2 && *entry > 0 {
                *entry -= 1;
                tracking.delete(SourceAddr(s), DestAddr(d));
            } else {
                *entry += 1;
                tracking.insert(SourceAddr(s), DestAddr(d));
            }
        }
        tracking
            .check_tracking_invariants()
            .map_err(TestCaseError::fail)?;
    }
}

#[test]
fn well_formedness_matters_demonstration() {
    // An *ill-formed* stream (deleting something never inserted) can
    // corrupt decodes — this is the documented boundary of the
    // guarantees, pinned here so it stays documented.
    let mut sketch = DistinctCountSketch::new(config(1));
    sketch.delete(SourceAddr(1), DestAddr(1));
    // The sketch does not panic and keeps counting consistently…
    sketch.insert(SourceAddr(1), DestAddr(1));
    // …net zero for the pair: sample is empty again.
    assert_eq!(sketch.estimate_distinct_pairs(0.25), 0);
}
