//! Golden fixtures: committed byte-level baselines that pin down (a)
//! the checkpoint format and (b) the seeded hash families it depends
//! on. If either ever changes shape, these tests fail **before** a
//! deployed monitor discovers it cannot read last week's checkpoint.
//!
//! Two fixture classes live under `tests/fixtures/`:
//! * `*.ckpt` — canonical checkpoint files for deterministic sample
//!   states. Drift check: re-encoding the same state today must be
//!   byte-identical to the committed file, and decoding the committed
//!   file must reproduce the state.
//! * `hash_vectors.txt` — golden input → output vectors for the
//!   geometric, tabulation, and multiply-shift hash families. The
//!   checkpoint format persists *only* the seed, so restore
//!   correctness requires that seeded hash construction never changes
//!   across versions — these vectors are that guarantee's tripwire.
//!
//! Regenerate intentionally with `UPDATE_FIXTURES=1 cargo test --test
//! golden_fixtures` and commit the diff (a format-version bump must
//! accompany any `.ckpt` change).

use std::fmt::Write as _;
use std::path::PathBuf;

use ddos_streams::hash::{GeometricLevelHash, Hash64, MultiplyShiftHash, TabulationHash};
use ddos_streams::persist::{decode, encode, Checkpoint};
use ddos_streams::{
    Delta, DestAddr, DistinctCountSketch, FlowUpdate, SketchConfig, SourceAddr, TrackingDcs,
};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn updating() -> bool {
    std::env::var_os("UPDATE_FIXTURES").is_some_and(|v| v == "1")
}

/// Compares `actual` against the committed fixture, or rewrites the
/// fixture when `UPDATE_FIXTURES=1`.
fn check_fixture(name: &str, actual: &[u8]) {
    let path = fixtures_dir().join(name);
    if updating() {
        std::fs::create_dir_all(fixtures_dir()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let committed = std::fs::read(&path).unwrap_or_else(|e| {
        panic!("fixture {name} unreadable ({e}); regenerate with UPDATE_FIXTURES=1")
    });
    assert_eq!(
        committed, actual,
        "fixture {name} drifted: the serialized form changed. If intentional, \
         bump FORMAT_VERSION and regenerate with UPDATE_FIXTURES=1."
    );
}

/// The canonical sample state: fixed seed, fixed stream, both inserts
/// and deletes. Changing this function invalidates the fixtures.
fn canonical_tracking() -> TrackingDcs {
    // Small dimensions keep the committed fixture compact (~150 KB):
    // each materialized level stores 3 slabs of r x s x 65 counters.
    let config = SketchConfig::builder()
        .num_tables(2)
        .buckets_per_table(8)
        .max_levels(6)
        .seed(0xDC5_2007)
        .build()
        .unwrap();
    let mut sketch = TrackingDcs::new(config);
    for s in 0..500u32 {
        sketch.update(FlowUpdate::new(
            SourceAddr(s.wrapping_mul(2_654_435_761)),
            DestAddr(s % 9),
            Delta::Insert,
        ));
        if s % 5 == 0 {
            sketch.update(FlowUpdate::new(
                SourceAddr(s.wrapping_mul(2_654_435_761)),
                DestAddr(s % 9),
                Delta::Delete,
            ));
        }
    }
    sketch
}

#[test]
fn tracking_checkpoint_fixture_has_not_drifted() {
    let state = canonical_tracking().to_state();
    let bytes = encode(&Checkpoint::Tracking(state.clone()));
    check_fixture("tracking_v1.ckpt", &bytes);
    if updating() {
        return;
    }
    // The committed file must also decode back to exactly this state —
    // both directions of the format are pinned.
    let committed = std::fs::read(fixtures_dir().join("tracking_v1.ckpt")).unwrap();
    let Checkpoint::Tracking(decoded) = decode(&committed).unwrap() else {
        panic!("fixture decodes to the wrong document kind");
    };
    assert_eq!(decoded, state);
    // And the restored sketch must answer queries identically.
    let restored = TrackingDcs::from_state(decoded).unwrap();
    assert_eq!(
        restored.track_top_k(5, 0.25),
        canonical_tracking().track_top_k(5, 0.25)
    );
}

#[test]
fn basic_checkpoint_fixture_has_not_drifted() {
    // Small dimensions keep the committed fixture compact (~150 KB):
    // each materialized level stores 3 slabs of r x s x 65 counters.
    let config = SketchConfig::builder()
        .num_tables(2)
        .buckets_per_table(8)
        .max_levels(6)
        .seed(0xDC5_2007)
        .build()
        .unwrap();
    let mut sketch = DistinctCountSketch::new(config);
    for s in 0..300u32 {
        sketch.insert(SourceAddr(s.wrapping_mul(0x9E37_79B9)), DestAddr(s % 6));
    }
    let bytes = encode(&Checkpoint::Sketch(sketch.to_state()));
    check_fixture("sketch_v1.ckpt", &bytes);
    if updating() {
        return;
    }
    let committed = std::fs::read(fixtures_dir().join("sketch_v1.ckpt")).unwrap();
    assert_eq!(
        decode(&committed).unwrap(),
        Checkpoint::Sketch(sketch.to_state())
    );
}

/// Golden vectors for the seeded hash families. A checkpoint stores
/// only `config.seed`; the full hash state is re-derived at restore
/// time, so any change to seeded construction or evaluation silently
/// breaks every existing checkpoint. This fixture turns "silently"
/// into a test failure.
fn hash_vector_text() -> String {
    let keys: [u64; 6] = [
        0,
        1,
        0xDEAD_BEEF,
        0x0123_4567_89AB_CDEF,
        u64::from(u32::MAX),
        u64::MAX,
    ];
    let seeds: [u64; 3] = [7, 0xDC5_2007, 0xFFFF_FFFF_FFFF_FFFF];
    let mut out = String::from(
        "# Golden vectors for the seeded hash families (dcs-hash).\n\
         # family seed key value\n",
    );
    for &seed in &seeds {
        let geometric = GeometricLevelHash::new(seed, 32);
        let tabulation = TabulationHash::new(seed);
        let multiply = MultiplyShiftHash::new(seed);
        for &key in &keys {
            writeln!(out, "geometric {seed} {key} {}", geometric.level(key)).unwrap();
            writeln!(out, "tabulation {seed} {key} {}", tabulation.hash(key)).unwrap();
            writeln!(out, "multiply_shift {seed} {key} {}", multiply.hash(key)).unwrap();
        }
    }
    out
}

#[test]
fn hash_golden_vectors_have_not_drifted() {
    check_fixture("hash_vectors.txt", hash_vector_text().as_bytes());
}

#[test]
fn fixture_directory_is_complete() {
    if updating() {
        return;
    }
    for name in ["tracking_v1.ckpt", "sketch_v1.ckpt", "hash_vectors.txt"] {
        assert!(
            fixtures_dir().join(name).exists(),
            "missing fixture {name}; regenerate with UPDATE_FIXTURES=1"
        );
    }
}
