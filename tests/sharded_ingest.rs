//! Cross-crate contract tests for the lock-free sharded ingest engine:
//! the merged result is *bit-identical* to single-threaded ingestion
//! regardless of how callers slice the stream or how many shards run,
//! and concurrent read-side snapshots are never torn.

use ddos_streams::netsim::{ingest_sharded, ShardedIngest};
use ddos_streams::{
    Delta, DestAddr, DistinctCountSketch, FlowKey, FlowUpdate, SketchConfig, SourceAddr,
    TrackingDcs,
};

fn config(seed: u64) -> SketchConfig {
    SketchConfig::builder()
        .buckets_per_table(256)
        .seed(seed)
        .build()
        .unwrap()
}

fn key_at(i: u32) -> FlowKey {
    FlowKey::new(SourceAddr(i), DestAddr(i % 50))
}

/// A well-formed workload with churn: every seventh position discounts
/// the flow inserted three positions earlier, so shard-routing mistakes
/// (reordered or dropped deletes) would change counter state, not just
/// shuffle identical work. The insert/delete pair always shares a
/// 4096-update routing chunk (pairs never straddle `r % 4096 < 3`), so
/// every per-shard sub-stream prefix — and therefore every read-side
/// snapshot — is itself a well-formed multiset (no delete ever precedes
/// its insert on any shard).
fn churn_updates(n: u32) -> Vec<FlowUpdate> {
    (0..n)
        .map(|i| {
            let r = i % 4096;
            if r % 7 == 6 {
                FlowUpdate {
                    key: key_at(i - 3),
                    delta: Delta::Delete,
                }
            } else {
                FlowUpdate {
                    key: key_at(i),
                    delta: Delta::Insert,
                }
            }
        })
        .collect()
}

/// Single-threaded reference: one `update_batch` call over the whole
/// stream, on the plain (non-tracking) sketch.
fn reference_sketch(updates: &[FlowUpdate], seed: u64) -> DistinctCountSketch {
    let mut sketch = DistinctCountSketch::new(config(seed));
    sketch.update_batch(updates);
    sketch
}

#[test]
fn merged_is_bit_identical_across_adversarial_slicings() {
    let updates = churn_updates(26_000);
    let reference = reference_sketch(&updates, 9);
    let num_cpus = std::thread::available_parallelism().map_or(2, usize::from);

    // Slicing patterns chosen to hit every routing edge: empty calls,
    // 1-element slivers, slices straddling the 4096-update routing
    // chunk and the 1024-update handoff chunk, and exact boundaries.
    let slicings: &[&[usize]] = &[
        &[26_000],                                // one shot
        &[0, 1, 0, 1, 25_998, 0],                 // empty + sliver edges
        &[1_000, 3_096, 1, 4_095, 4_096, 13_712], // chunk-aligned + straddling
        &[5_000, 5_000, 5_000, 5_000, 6_000],     // every slice straddles 4096
        &[1_023, 1, 1_024, 2_048, 21_904],        // handoff-chunk edges
    ];
    for &shards in &[1usize, 3, num_cpus.max(2)] {
        for slicing in slicings {
            assert_eq!(slicing.iter().sum::<usize>(), updates.len());
            let mut engine = ShardedIngest::new(config(9), shards);
            let mut cursor = 0usize;
            for &len in *slicing {
                engine.ingest(&updates[cursor..cursor + len]);
                cursor += len;
            }
            let merged = engine.merged().unwrap();
            assert_eq!(
                merged.sketch().to_state(),
                reference.to_state(),
                "shards={shards} slicing={slicing:?} diverged from single-threaded"
            );
        }
    }
}

#[test]
fn one_element_calls_match_single_threaded() {
    // Degenerate producer: 5_000 calls of one update each. Exercises the
    // per-call routing math at every absolute position.
    let updates = churn_updates(5_000);
    let reference = reference_sketch(&updates, 4);
    let mut engine = ShardedIngest::new(config(4), 3);
    for u in &updates {
        engine.ingest(std::slice::from_ref(u));
    }
    let merged = engine.merged().unwrap();
    assert_eq!(merged.sketch().to_state(), reference.to_state());
}

#[test]
fn helper_matches_engine_for_every_shard_count() {
    let updates = churn_updates(12_000);
    let reference = reference_sketch(&updates, 5);
    for shards in 1..=4usize {
        let sketch = ingest_sharded(&updates, config(5), shards).unwrap();
        assert_eq!(
            sketch.sketch().to_state(),
            reference.to_state(),
            "shards={shards}"
        );
    }
}

#[test]
fn concurrent_snapshots_are_never_torn() {
    // Reader threads hammer `ShardReader::snapshot` while the producer
    // streams updates. Every snapshot must be internally consistent
    // (published counters match the merged sketch exactly, tracking
    // invariants hold) and per-reader coverage must be monotone.
    let updates = churn_updates(60_000);
    let reference = reference_sketch(&updates, 13);
    let mut engine = ShardedIngest::new(config(13), 3);
    let reader = engine.reader();
    let stop = std::sync::atomic::AtomicBool::new(false);

    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..2 {
            let reader = reader.clone();
            let stop = &stop;
            readers.push(scope.spawn(move || {
                let mut last_applied = 0u64;
                let mut snapshots = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    let snap = reader.snapshot().unwrap();
                    assert_eq!(
                        snap.updates_applied,
                        snap.sketch.updates_processed(),
                        "torn snapshot: shard counters disagree with merged sketch"
                    );
                    assert_eq!(snap.shard_updates.iter().sum::<u64>(), snap.updates_applied);
                    snap.sketch.check_tracking_invariants().unwrap();
                    assert!(
                        snap.updates_applied >= last_applied,
                        "snapshot coverage went backwards: {last_applied} -> {}",
                        snap.updates_applied
                    );
                    last_applied = snap.updates_applied;
                    snapshots += 1;
                    std::thread::yield_now();
                }
                snapshots
            }));
        }
        let mut ingested = 0u64;
        for (round, chunk) in updates.chunks(512).enumerate() {
            engine.ingest(chunk);
            ingested += chunk.len() as u64;
            // Periodic flushes publish genuinely partial coverage for
            // the reader threads to observe mid-stream.
            if round % 16 == 15 {
                let mid = engine.merged().unwrap();
                assert_eq!(mid.updates_processed(), ingested);
            }
        }
        let merged = engine.merged().unwrap();
        assert_eq!(merged.sketch().to_state(), reference.to_state());
        stop.store(true, std::sync::atomic::Ordering::Release);
        for handle in readers {
            assert!(
                handle.join().unwrap() > 0,
                "reader thread never snapshotted"
            );
        }
    });

    // After the flush inside `merged`, a fresh snapshot covers the full
    // stream and equals the single-threaded result bit for bit.
    let final_snap = reader.snapshot().unwrap();
    assert_eq!(final_snap.updates_applied, 60_000);
    assert_eq!(final_snap.sketch.sketch().to_state(), reference.to_state());
}

#[test]
fn sharded_matches_incremental_tracking_top_k() {
    // The tracking layer built from the merged sketch agrees with an
    // incrementally-maintained TrackingDcs on the query surface.
    let updates = churn_updates(18_000);
    let mut tracked = TrackingDcs::new(config(21));
    tracked.update_batch(&updates);
    let sharded = ingest_sharded(&updates, config(21), 4).unwrap();
    assert_eq!(sharded.updates_processed(), tracked.updates_processed());
    let a = sharded.track_top_k(10, 0.25);
    let b = tracked.track_top_k(10, 0.25);
    assert_eq!(a.entries, b.entries);
}
