//! Differential soak testing: the tracking sketch against the exact
//! tracker over long randomized churn, plus no-panic guarantees on
//! ill-formed input.
//!
//! The long soak is `#[ignore]`d by default; run it with
//! `cargo test --release --test soak -- --ignored`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ddos_streams::baselines::ExactDistinctTracker;
use ddos_streams::metrics::top_k_recall;
use ddos_streams::{
    Delta, DestAddr, DistinctCountSketch, FlowUpdate, GroupBy, SketchConfig, SourceAddr,
    TrackingDcs,
};

fn churn_run(steps: u32, seed: u64, check_every: u32) {
    let config = SketchConfig::builder()
        .buckets_per_table(2048)
        .seed(seed)
        .build()
        .unwrap();
    let mut sketch = TrackingDcs::new(config);
    let mut exact = ExactDistinctTracker::new(GroupBy::Destination);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<FlowUpdate> = Vec::new();

    for step in 0..steps {
        // 60% insert / 40% delete of a random live flow. Destinations
        // are drawn with a heavy skew (cubed uniform) so the top-5 is
        // well separated from the tail and recall is meaningful.
        if live.is_empty() || rng.gen_bool(0.6) {
            let dest = (rng.gen::<f64>().powi(3) * 40.0) as u32;
            let update = FlowUpdate::insert(SourceAddr(rng.gen()), DestAddr(dest));
            live.push(update);
            sketch.update(update);
            exact.update(update);
        } else {
            let index = rng.gen_range(0..live.len());
            let victim = live.swap_remove(index);
            sketch.update(victim.inverted());
            exact.update(victim.inverted());
        }
        if step % check_every == check_every - 1 {
            // Structural invariants hold...
            sketch.check_tracking_invariants().unwrap();
            // ...the silent-failure counters stay untouched on a
            // well-formed stream (every delete cancels a live insert)...
            assert_eq!(sketch.heap_underflows(), 0, "step {step}");
            assert_eq!(sketch.heap_overflows(), 0, "step {step}");
            assert_eq!(sketch.untracked_decrements(), 0, "step {step}");
            // ...and accuracy stays in band whenever there is enough
            // mass for the top-5 to be meaningful.
            let truth = exact.top_k(5);
            if truth.first().is_some_and(|&(_, f)| f >= 50) {
                let est = sketch.track_top_k(5, 0.25);
                let recall = top_k_recall(&truth, &est.groups());
                assert!(
                    recall >= 0.6,
                    "step {step}: recall collapsed to {recall} (truth {truth:?})"
                );
            }
            // Distinct-pair estimates track the churn.
            let u_true = exact.distinct_pairs() as f64;
            if u_true > 500.0 {
                let u_est = sketch.estimate_distinct_pairs(0.25) as f64;
                assert!(
                    (u_est - u_true).abs() / u_true < 0.5,
                    "step {step}: U estimate {u_est} vs {u_true}"
                );
            }
        }
    }
}

#[test]
fn churn_soak_short() {
    churn_run(20_000, 1, 5_000);
}

#[test]
#[ignore = "long soak; run with --ignored"]
fn churn_soak_long() {
    for seed in 1..=3 {
        churn_run(500_000, seed, 50_000);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary — possibly ill-formed — update streams never panic,
    /// and the estimator always returns something structurally sane.
    #[test]
    fn ill_formed_streams_never_panic(
        seed in 0u64..50,
        ops in proptest::collection::vec((any::<u32>(), 0u32..16, any::<bool>()), 1..400),
    ) {
        let config = SketchConfig::builder()
            .buckets_per_table(64)
            .seed(seed)
            .build()
            .unwrap();
        let mut basic = DistinctCountSketch::new(config.clone());
        let mut tracking = TrackingDcs::new(config);
        for (s, d, del) in ops {
            let update = FlowUpdate::new(
                SourceAddr(s),
                DestAddr(d),
                if del { Delta::Delete } else { Delta::Insert },
            );
            basic.update(update);
            tracking.update(update);
        }
        let est = basic.estimate_top_k(5, 0.25);
        prop_assert!(est.entries.len() <= 5);
        for w in est.entries.windows(2) {
            prop_assert!(w[0].estimated_frequency >= w[1].estimated_frequency);
        }
        let tracked = tracking.track_top_k(5, 0.25);
        prop_assert!(tracked.entries.len() <= 5);
        // Queries never panic even when the stream was nonsense.
        let _ = basic.estimate_distinct_pairs(0.25);
        let _ = basic.estimate_threshold(3, 0.25);
        let _ = tracking.track_threshold(3, 0.25);
        let _ = basic.singletons();
    }
}
