//! Edge cases of the `EpochManager` snapshot ring, with and without a
//! checkpoint round trip in the middle.
//!
//! The ring is the subtlest state the checkpoint format carries: it
//! wraps (oldest snapshots evicted), it can be partially filled, and
//! windowed queries index it from the *end*. Each scenario here is run
//! against a manager that has been serialized to bytes and restored,
//! asserting the restored manager answers exactly like the original.

use ddos_streams::netsim::epoch::EpochManager;
use ddos_streams::persist::{decode, encode, Checkpoint, PersistError};
use ddos_streams::{Delta, DestAddr, FlowUpdate, SketchConfig, SourceAddr};

fn config() -> SketchConfig {
    SketchConfig::builder()
        .buckets_per_table(128)
        .seed(21)
        .build()
        .unwrap()
}

fn flood(epochs: &mut EpochManager, dest: u32, from: u32, count: u32) {
    for s in from..from + count {
        epochs.ingest(FlowUpdate::new(
            SourceAddr(s),
            DestAddr(dest),
            Delta::Insert,
        ));
    }
}

/// Serializes and restores a manager through the full codec.
fn roundtrip(epochs: &EpochManager) -> EpochManager {
    let bytes = encode(&Checkpoint::Epoch(epochs.to_checkpoint()));
    let Checkpoint::Epoch(checkpoint) = decode(&bytes).unwrap() else {
        panic!("wrong document kind");
    };
    EpochManager::from_checkpoint(checkpoint).unwrap()
}

#[test]
fn wrapped_ring_restores_with_correct_eviction_order() {
    // Capacity 3, 7 rotations: snapshots for epochs 5, 6, 7 remain.
    let mut epochs = EpochManager::new(config(), 3);
    for e in 0..7u32 {
        flood(&mut epochs, e, e * 1_000, 20);
        epochs.rotate();
    }
    assert_eq!(epochs.snapshots_held(), 3);
    assert_eq!(epochs.epochs_rotated(), 7);
    let restored = roundtrip(&epochs);
    assert_eq!(restored.snapshots_held(), 3);
    assert_eq!(restored.epochs_rotated(), 7);
    assert_eq!(restored.to_checkpoint(), epochs.to_checkpoint());
}

#[test]
fn windowed_query_spanning_the_wrap_survives_restore() {
    // After the ring wraps, a window reaching to its oldest retained
    // snapshot must see exactly the post-eviction epochs — identically
    // before and after a checkpoint round trip.
    let mut epochs = EpochManager::new(config(), 2);
    for e in 0..5u32 {
        flood(&mut epochs, e, e * 1_000, 30);
        epochs.rotate();
    }
    flood(&mut epochs, 99, 50_000, 40); // open epoch
    let restored = roundtrip(&epochs);
    for window in [1usize, 2] {
        assert_eq!(
            restored.recent_top_k(window, 4, 0.25).unwrap(),
            epochs.recent_top_k(window, 4, 0.25).unwrap(),
            "window {window} diverged after restore"
        );
    }
    // Window 2 reaches the oldest retained snapshot (epoch 4's close):
    // epochs 0..=3 are invisible, destination 4 and 99 are.
    let w2 = restored.recent_top_k(2, 6, 0.25).unwrap();
    let mut groups = w2.groups();
    groups.sort_unstable();
    assert_eq!(groups, vec![4, 99]);
    assert!(w2.frequency_of(0).is_none(), "evicted epoch leaked through");
}

#[test]
fn difference_against_oldest_snapshot_is_exact_after_restore() {
    // recent_activity(window = ring length) differences against the
    // oldest snapshot; the restored manager must produce an identical
    // difference sketch (same estimates, not just same ordering).
    let mut epochs = EpochManager::new(config(), 4);
    for e in 0..4u32 {
        flood(&mut epochs, 7, e * 1_000, 25); // same dest every epoch
        epochs.rotate();
    }
    flood(&mut epochs, 7, 100_000, 60);
    let restored = roundtrip(&epochs);
    let original = epochs.recent_activity(4).unwrap();
    let recovered = restored.recent_activity(4).unwrap();
    assert_eq!(
        original.track_top_k(3, 0.25),
        recovered.track_top_k(3, 0.25)
    );
    assert_eq!(original.to_state(), recovered.to_state());
}

#[test]
fn partially_filled_ring_restores() {
    // Fewer rotations than capacity: the checkpoint carries a short
    // snapshot list that must restore as-is (not padded, not rejected).
    let mut epochs = EpochManager::new(config(), 8);
    flood(&mut epochs, 1, 0, 40);
    epochs.rotate();
    flood(&mut epochs, 2, 1_000, 40);
    assert_eq!(epochs.snapshots_held(), 1);
    let restored = roundtrip(&epochs);
    assert_eq!(restored.snapshots_held(), 1);
    assert_eq!(restored.epochs_rotated(), 1);
    assert_eq!(
        restored.recent_top_k(1, 2, 0.25).unwrap(),
        epochs.recent_top_k(1, 2, 0.25).unwrap()
    );
}

#[test]
fn empty_ring_restores() {
    // No rotations at all: snapshots list is empty, only the live
    // sketch travels.
    let mut epochs = EpochManager::new(config(), 4);
    flood(&mut epochs, 3, 0, 50);
    let restored = roundtrip(&epochs);
    assert_eq!(restored.snapshots_held(), 0);
    assert_eq!(restored.to_checkpoint(), epochs.to_checkpoint());
}

#[test]
fn restored_manager_keeps_rotating_correctly() {
    // The restored ring must continue evicting in the right order:
    // rotate it past capacity after restore and compare against an
    // uninterrupted manager fed the same schedule.
    let mut full = EpochManager::new(config(), 3);
    let mut prefix = EpochManager::new(config(), 3);
    for e in 0..2u32 {
        flood(&mut full, e, e * 1_000, 20);
        flood(&mut prefix, e, e * 1_000, 20);
        full.rotate();
        prefix.rotate();
    }
    let mut restored = roundtrip(&prefix);
    for e in 2..6u32 {
        flood(&mut full, e, e * 1_000, 20);
        flood(&mut restored, e, e * 1_000, 20);
        full.rotate();
        restored.rotate();
    }
    assert_eq!(restored.to_checkpoint(), full.to_checkpoint());
}

#[test]
fn oversized_snapshot_list_is_rejected() {
    let mut epochs = EpochManager::new(config(), 2);
    for e in 0..2u32 {
        flood(&mut epochs, e, e * 1_000, 10);
        epochs.rotate();
    }
    let mut checkpoint = epochs.to_checkpoint();
    // Claim a smaller ring than the snapshots present.
    checkpoint.max_snapshots = 1;
    assert!(matches!(
        EpochManager::from_checkpoint(checkpoint),
        Err(PersistError::Incompatible { .. })
    ));

    let mut zero = epochs.to_checkpoint();
    zero.max_snapshots = 0;
    assert!(matches!(
        EpochManager::from_checkpoint(zero),
        Err(PersistError::Incompatible { .. })
    ));
}
