//! Accuracy floors on the paper's synthetic workload (scaled down),
//! with fixed seeds: recall and average relative error for both
//! estimators, plus ground-truth consistency with the exact tracker.

use ddos_streams::baselines::ExactDistinctTracker;
use ddos_streams::metrics::{average_relative_error, top_k_recall};
use ddos_streams::{
    DistinctCountSketch, GroupBy, PaperWorkload, SketchConfig, TrackingDcs, WorkloadConfig,
};

fn workload(z: f64, seed: u64) -> PaperWorkload {
    PaperWorkload::generate(WorkloadConfig {
        distinct_pairs: 100_000,
        num_destinations: 625, // paper's U/d ratio of 160
        skew: z,
        seed,
    })
}

fn config(s: usize, seed: u64) -> SketchConfig {
    SketchConfig::builder()
        .buckets_per_table(s)
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn exact_tracker_matches_workload_ground_truth() {
    let w = workload(1.5, 3);
    let mut exact = ExactDistinctTracker::new(GroupBy::Destination);
    exact.extend(w.updates().iter().copied());
    assert_eq!(exact.distinct_pairs(), w.distinct_pairs());
    assert_eq!(exact.top_k(10), w.exact_top_k(10));
}

#[test]
fn calibrated_sketch_reaches_paper_accuracy_bands_at_z15() {
    // z = 1.5, k ≤ 10, large-sample configuration (s = 4096 → ~320
    // sample pairs): recall and ARE should sit in the bands Fig. 8
    // plots for moderate skew.
    let mut recall_sum = 0.0;
    let mut are_sum = 0.0;
    let seeds = [5u64, 6, 7];
    for &seed in &seeds {
        let w = workload(1.5, seed);
        let mut sketch = TrackingDcs::new(config(4096, seed));
        for u in w.updates() {
            sketch.update(*u);
        }
        let exact = w.exact_top_k(10);
        let est = sketch.track_top_k(10, 0.25);
        let approx: Vec<(u32, u64)> = est
            .entries
            .iter()
            .map(|e| (e.group, e.estimated_frequency))
            .collect();
        recall_sum += top_k_recall(&exact, &est.groups());
        are_sum += average_relative_error(&exact, &approx);
    }
    let recall = recall_sum / seeds.len() as f64;
    let are = are_sum / seeds.len() as f64;
    assert!(recall >= 0.8, "recall@10 = {recall}");
    assert!(are <= 0.30, "ARE@10 = {are}");
}

#[test]
fn top_1_is_found_at_every_skew() {
    for (i, z) in [1.0, 1.5, 2.0, 2.5].into_iter().enumerate() {
        let w = workload(z, 10 + i as u64);
        let mut sketch = TrackingDcs::new(config(2048, 10 + i as u64));
        for u in w.updates() {
            sketch.update(*u);
        }
        let est = sketch.track_top_k(1, 0.25);
        assert_eq!(
            est.entries[0].group,
            w.exact_top_k(1)[0].0,
            "top-1 missed at z = {z}"
        );
    }
}

#[test]
fn basic_and_tracking_agree_on_identical_streams() {
    let w = workload(2.0, 20);
    let mut basic = DistinctCountSketch::new(config(1024, 20));
    let mut tracking = TrackingDcs::new(config(1024, 20));
    for u in w.updates() {
        basic.update(*u);
        tracking.update(*u);
    }
    for k in [1, 5, 10] {
        assert_eq!(
            basic.estimate_top_k(k, 0.25),
            tracking.track_top_k(k, 0.25),
            "estimators disagree at k = {k}"
        );
    }
    assert_eq!(
        basic.estimate_distinct_pairs(0.25),
        tracking.estimate_distinct_pairs(0.25)
    );
}

#[test]
fn distinct_pair_estimate_within_20_percent() {
    let w = workload(1.0, 30);
    let mut sketch = DistinctCountSketch::new(config(2048, 30));
    for u in w.updates() {
        sketch.update(*u);
    }
    let est = sketch.estimate_distinct_pairs(0.25) as f64;
    let truth = w.distinct_pairs() as f64;
    assert!(
        (est - truth).abs() / truth < 0.2,
        "U estimate {est} vs {truth}"
    );
}

#[test]
fn threshold_tracking_finds_all_heavy_destinations() {
    // Footnote-3 variant: every destination with f ≥ τ is reported for
    // a τ well below the top frequencies.
    let w = workload(2.0, 40);
    let mut sketch = TrackingDcs::new(config(2048, 40));
    for u in w.updates() {
        sketch.update(*u);
    }
    let tau = w.frequency_of_rank(2); // third-heaviest frequency
    let reported = sketch.track_threshold(tau / 2, 0.25);
    for rank in 0..3 {
        let dest = w.dest_of_rank(rank).0;
        assert!(
            reported.groups().contains(&dest),
            "rank-{rank} destination missing from threshold answer"
        );
    }
}

#[test]
fn deletion_heavy_stream_stays_accurate() {
    // Insert the workload, delete every pair of the even-ranked
    // destinations; top-k must come from odd ranks only.
    let w = workload(1.5, 50);
    let mut sketch = TrackingDcs::new(config(2048, 50));
    let mut exact = ExactDistinctTracker::new(GroupBy::Destination);
    for u in w.updates() {
        sketch.update(*u);
        exact.update(*u);
    }
    for u in w.updates() {
        let rank = u.key.dest().0 - ddos_streams::streamgen::workload::DEST_BASE;
        if rank.is_multiple_of(2) {
            sketch.update(u.inverted());
            exact.update(u.inverted());
        }
    }
    let est = sketch.track_top_k(5, 0.25);
    let truth = exact.top_k(5);
    let recall = top_k_recall(&truth, &est.groups());
    assert!(recall >= 0.6, "post-deletion recall@5 = {recall}");
    for g in est.groups() {
        let rank = g - ddos_streams::streamgen::workload::DEST_BASE;
        assert_eq!(rank % 2, 1, "deleted destination {g} resurfaced");
    }
}
