//! The paper's qualitative claims against baselines, as executable
//! tests: volume-based detection confuses flash crowds with attacks
//! and misses SYN floods; insert-only distinct counters cannot
//! discount completed handshakes; the Distinct-Count Sketch handles
//! both.

use ddos_streams::baselines::{
    CountMinSketch, HyperLogLog, PerGroupFm, SpaceSaving, SuperspreaderSampler,
};
use ddos_streams::netsim::{HandshakeTracker, TrafficDriver};
use ddos_streams::{DestAddr, GroupBy, SketchConfig, SourceAddr, TrackingDcs};

#[test]
fn volume_detector_prefers_flash_crowd_dcs_prefers_flood() {
    let flood_victim = DestAddr(0x0a00_0001);
    let crowd_magnet = DestAddr(0x0a00_0002);
    let mut driver = TrafficDriver::new(1);
    driver
        .syn_flood(flood_victim, 3_000)
        .flash_crowd(crowd_magnet, 1_500);

    let mut volume = SpaceSaving::new(64);
    let mut tracker = HandshakeTracker::new(None);
    let mut sketch = TrackingDcs::new(
        SketchConfig::builder()
            .buckets_per_table(512)
            .seed(1)
            .build()
            .unwrap(),
    );
    for seg in driver.into_segments() {
        volume.add(u64::from(seg.dst.0), u64::from(seg.payload_len));
        if let Some(u) = tracker.observe(&seg) {
            sketch.update(u);
        }
    }
    assert_eq!(volume.top_k(1)[0].0, u64::from(crowd_magnet.0));
    assert_eq!(sketch.track_top_k(1, 0.25).entries[0].group, flood_victim.0);
}

#[test]
fn packet_count_heavy_hitters_barely_see_the_flood() {
    // Count packets (not bytes): the flood is 2 packets per source
    // (SYN + SYN-ACK); a flash crowd is 4+ per client. Volume-by-packets
    // still under-ranks a flood of equal source count.
    let flood_victim = DestAddr(0x0a00_0003);
    let crowd_magnet = DestAddr(0x0a00_0004);
    let mut driver = TrafficDriver::new(2);
    driver
        .syn_flood(flood_victim, 1_000)
        .flash_crowd(crowd_magnet, 1_000);
    let mut packets = CountMinSketch::new(4, 1024, 2);
    for seg in driver.into_segments() {
        packets.add(u64::from(seg.dst.0), 1);
    }
    assert!(
        packets.query(u64::from(crowd_magnet.0)) > packets.query(u64::from(flood_victim.0)),
        "equal-source flood must look smaller than the crowd by packet count"
    );
}

#[test]
fn insert_only_distinct_counters_cannot_discount_completions() {
    // 2 000 legitimate clients complete handshakes at dest A; 500
    // attackers flood dest B. Net truth: A has ~0 half-open, B has 500.
    // Insert-only per-group counters rank A first regardless.
    let legit = 0x0a00_0005u32;
    let attacked = 0x0a00_0006u32;

    let mut fm = PerGroupFm::new(64, 3);
    let mut hll_a = HyperLogLog::new(10, 3);
    let mut hll_b = HyperLogLog::new(10, 3);
    let mut sketch = TrackingDcs::new(
        SketchConfig::builder()
            .buckets_per_table(512)
            .seed(3)
            .build()
            .unwrap(),
    );

    for s in 0..2_000u32 {
        let key = ddos_streams::FlowKey::new(SourceAddr(s), DestAddr(legit));
        fm.add(legit, key.packed());
        hll_a.add(key.packed());
        sketch.update(ddos_streams::FlowUpdate {
            key,
            delta: ddos_streams::Delta::Insert,
        });
        // Handshake completes — only the DCS can process this.
        sketch.update(ddos_streams::FlowUpdate {
            key,
            delta: ddos_streams::Delta::Delete,
        });
    }
    for s in 0..500u32 {
        let key = ddos_streams::FlowKey::new(SourceAddr(0x9000_0000 + s), DestAddr(attacked));
        fm.add(attacked, key.packed());
        hll_b.add(key.packed());
        sketch.update(ddos_streams::FlowUpdate {
            key,
            delta: ddos_streams::Delta::Insert,
        });
    }

    // Insert-only views: the legitimate destination looks 4x bigger.
    assert_eq!(fm.top_k(1)[0].0, legit);
    assert!(hll_a.estimate() > hll_b.estimate());
    // The DCS sees through it.
    let top = sketch.track_top_k(1, 0.25);
    assert_eq!(top.entries[0].group, attacked);
}

#[test]
fn cascaded_summary_counts_distincts_but_cannot_forget() {
    use ddos_streams::baselines::CascadedSummary;
    let legit = 0x0a00_0015u32;
    let attacked = 0x0a00_0016u32;
    let mut cascaded = CascadedSummary::new(3, 256, 10, 7);
    let mut sketch = TrackingDcs::new(
        SketchConfig::builder()
            .buckets_per_table(512)
            .seed(7)
            .build()
            .unwrap(),
    );
    // 3000 legitimate clients, all completing; 600 attackers.
    for s in 0..3_000u32 {
        let key = ddos_streams::FlowKey::new(SourceAddr(s), DestAddr(legit));
        cascaded.insert(legit, key.packed());
        sketch.update(ddos_streams::FlowUpdate {
            key,
            delta: ddos_streams::Delta::Insert,
        });
        sketch.update(ddos_streams::FlowUpdate {
            key,
            delta: ddos_streams::Delta::Delete,
        });
    }
    for s in 0..600u32 {
        let key = ddos_streams::FlowKey::new(SourceAddr(0xa000_0000 + s), DestAddr(attacked));
        cascaded.insert(attacked, key.packed());
        sketch.update(ddos_streams::FlowUpdate {
            key,
            delta: ddos_streams::Delta::Insert,
        });
    }
    // The cascaded summary estimates distinct degrees well…
    let legit_est = cascaded.estimate(legit);
    let attacked_est = cascaded.estimate(attacked);
    assert!((legit_est - 3_000.0).abs() / 3_000.0 < 0.25);
    assert!((attacked_est - 600.0).abs() / 600.0 < 0.25);
    // …but, being insert-only, ranks the (fully-legitimate) crowd as
    // 5x "larger" than the attack; the DCS inverts that correctly.
    assert!(legit_est > attacked_est);
    assert_eq!(sketch.track_top_k(1, 0.25).entries[0].group, attacked);
}

#[test]
fn superspreader_sampler_needs_threshold_dcs_does_not() {
    // A scanner probing 400 destinations: a sampler configured with
    // k = 1000 misses it; the top-k sketch reports it with no threshold.
    let scanner = SourceAddr(0xbad0_0001);
    let mut sampler_high = SuperspreaderSampler::new(1_000, 0.5, 4);
    let mut sketch = TrackingDcs::new(
        SketchConfig::builder()
            .group_by(GroupBy::Source)
            .buckets_per_table(512)
            .seed(4)
            .build()
            .unwrap(),
    );
    for d in 0..400u32 {
        let key = ddos_streams::FlowKey::new(scanner, DestAddr(d));
        sampler_high.observe(key);
        sketch.update(ddos_streams::FlowUpdate {
            key,
            delta: ddos_streams::Delta::Insert,
        });
    }
    for h in 0..100u32 {
        let key = ddos_streams::FlowKey::new(SourceAddr(h), DestAddr(h));
        sampler_high.observe(key);
        sketch.update(ddos_streams::FlowUpdate {
            key,
            delta: ddos_streams::Delta::Insert,
        });
    }
    assert!(
        !sampler_high
            .superspreaders()
            .iter()
            .any(|&(s, _)| s == scanner.0),
        "threshold set too high: sampler misses the scanner"
    );
    assert_eq!(
        sketch.track_top_k(1, 0.25).entries[0].group,
        scanner.0,
        "top-k formulation finds it without a threshold"
    );
}

#[test]
fn exact_tracker_memory_grows_sketch_memory_does_not() {
    use ddos_streams::baselines::ExactDistinctTracker;
    let config = SketchConfig::builder().seed(5).build().unwrap();
    let measure = |n: u32| {
        let mut exact = ExactDistinctTracker::new(GroupBy::Destination);
        let mut sketch = TrackingDcs::new(config.clone());
        for s in 0..n {
            let u = ddos_streams::FlowUpdate::insert(SourceAddr(s), DestAddr(s % 50));
            exact.update(u);
            sketch.update(u);
        }
        (exact.heap_bytes(), sketch.sketch().heap_bytes())
    };
    let (exact_small, sketch_small) = measure(10_000);
    let (exact_big, sketch_big) = measure(160_000);
    // Exact grows ~16x; the sketch grows only by newly-touched levels
    // (≈ log factor).
    assert!(exact_big > exact_small * 8);
    assert!(sketch_big < sketch_small * 2);
}
