//! The wide read-side kernels (DESIGN.md §16) must be *bit-identical*
//! to the retained scalar reference paths on well-formed streams —
//! every singleton, occupancy gauge, merged counter, and difference
//! state, not just statistically close. The wide screen is only
//! allowed to skip signature decodes it can prove irrelevant, and the
//! fixed-width merge/subtract kernels may only reorder independent
//! wrapping lane operations.
//!
//! Boundary shapes are chosen around both kernel thresholds:
//! `SCREEN_LANES = 64` (the screen mask width — `r·s ∈ {62, 64, 66}`
//! exercises the chunk tail) and `SLAB_WIDE_MIN = 256` (the slab
//! cutoff — `r·s ∈ {254, 256, 258}` straddles the scalar fallback).

use ddos_streams::{
    DestAddr, DistinctCountSketch, FlowUpdate, ScenarioBuilder, SketchConfig, SourceAddr,
};

/// `(num_tables, buckets_per_table)` shapes straddling the wide-kernel
/// thresholds, plus the default-ish shape the scenario tests use.
const BOUNDARY_SHAPES: &[(usize, usize)] = &[
    // r·s around SCREEN_LANES = 64: one short chunk, one exact, one +tail.
    (2, 31),
    (2, 32),
    (2, 33),
    // r·s around SLAB_WIDE_MIN = 256: scalar fallback, exact cutoff, +tail.
    (2, 127),
    (2, 128),
    (2, 129),
];

fn config(r: usize, s: usize, seed: u64) -> SketchConfig {
    SketchConfig::builder()
        .num_tables(r)
        .buckets_per_table(s)
        .seed(seed)
        .build()
        .unwrap()
}

/// Every wide read of `sketch` must agree bit-for-bit with its scalar
/// reference twin.
fn assert_reads_equivalent(sketch: &DistinctCountSketch, context: &str) {
    assert_eq!(
        sketch.singletons(),
        sketch.singletons_reference(),
        "singleton enumeration diverged ({context})"
    );
    for level in 0..sketch.config().max_levels() {
        assert_eq!(
            sketch.level_occupancy(level),
            sketch.level_occupancy_reference(level),
            "occupancy diverged at level {level} ({context})"
        );
    }
}

/// Applies a fixed-seed attack scenario (background churn with
/// deletions plus a SYN flood) to one sketch.
fn attacked(config: SketchConfig) -> DistinctCountSketch {
    let scenario = ScenarioBuilder::new(17)
        .background(4_000, 60, 0.8)
        .syn_flood(0x0a00_0001, 600)
        .build();
    let mut sketch = DistinctCountSketch::new(config);
    for u in scenario.updates() {
        sketch.update(*u);
    }
    sketch
}

/// Seeded well-formed random churn: deletes only remove live pairs, a
/// third of inserts repeat a live pair, and the all-zero flow key
/// `(0, 0)` — invisible to both screen sums — is kept live throughout.
fn churned(config: SketchConfig, seed: u64, updates: usize) -> DistinctCountSketch {
    use rand::prelude::*;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut sketch = DistinctCountSketch::new(config);
    sketch.update(FlowUpdate::insert(SourceAddr(0), DestAddr(0)));
    let mut live: Vec<(u32, u32)> = Vec::new();
    for _ in 0..updates {
        let update = if !live.is_empty() && rng.gen_bool(0.4) {
            let i = rng.gen_range(0..live.len());
            let (s, d) = live.swap_remove(i);
            FlowUpdate::delete(SourceAddr(s), DestAddr(d))
        } else {
            let (s, d) = if !live.is_empty() && rng.gen_bool(0.33) {
                live[rng.gen_range(0..live.len())]
            } else {
                (rng.gen(), rng.gen_range(0..12))
            };
            live.push((s, d));
            FlowUpdate::insert(SourceAddr(s), DestAddr(d))
        };
        sketch.update(update);
    }
    sketch
}

#[test]
fn wide_reads_match_reference_on_attack_scenario() {
    for &(r, s) in BOUNDARY_SHAPES {
        let sketch = attacked(config(r, s, 23));
        assert_reads_equivalent(&sketch, &format!("attack, r = {r}, s = {s}"));
    }
}

#[test]
fn wide_reads_match_reference_on_random_churn() {
    for seed in [3u64, 29, 71] {
        for &(r, s) in BOUNDARY_SHAPES {
            let sketch = churned(config(r, s, seed), seed, 6_000);
            assert_reads_equivalent(&sketch, &format!("churn seed {seed}, r = {r}, s = {s}"));
        }
    }
}

#[test]
fn wide_merge_matches_reference_merge_bit_for_bit() {
    for &(r, s) in BOUNDARY_SHAPES {
        // Same sketch seed (merge requires identical configs), two
        // different streams.
        let a = attacked(config(r, s, 23));
        let b = churned(config(r, s, 23), 29, 6_000);

        let mut wide = a.clone();
        wide.merge_from(&b).unwrap();
        let mut reference = a.clone();
        reference.merge_from_reference(&b).unwrap();

        assert_eq!(
            wide.to_state(),
            reference.to_state(),
            "merged state diverged (r = {r}, s = {s})"
        );
        assert_reads_equivalent(&wide, &format!("post-merge, r = {r}, s = {s}"));
    }
}

#[test]
fn wide_difference_matches_reference_difference_bit_for_bit() {
    for &(r, s) in BOUNDARY_SHAPES {
        // Build the snapshot as a mid-stream clone so `difference`
        // subtracts a genuine earlier state with shared levels.
        let mut sketch = churned(config(r, s, 3), 3, 3_000);
        let snapshot = sketch.clone();
        let scenario = ScenarioBuilder::new(17).syn_flood(0x0a00_0001, 600).build();
        for u in scenario.updates() {
            sketch.update(*u);
        }

        let wide = sketch.difference(&snapshot).unwrap();
        let reference = sketch.difference_reference(&snapshot).unwrap();
        assert_eq!(
            wide.to_state(),
            reference.to_state(),
            "difference state diverged (r = {r}, s = {s})"
        );
        assert_reads_equivalent(&wide, &format!("post-difference, r = {r}, s = {s}"));
    }
}

#[test]
fn batched_point_queries_match_single_shot_queries() {
    let sketch = attacked(config(3, 256, 23));
    let groups: Vec<u32> = vec![0x0a00_0001, 0, 1, 7, 0xdead_beef, 42];

    let batched = sketch.estimate_group_frequencies(&groups, 0.25);
    assert_eq!(batched.len(), groups.len());

    let sample = sketch.distinct_sample(0.25);
    for (group, &batch_estimate) in groups.iter().zip(&batched) {
        assert_eq!(
            batch_estimate,
            sketch.estimate_group_frequency(*group, 0.25),
            "batched estimate diverged from single-shot for group {group:#x}"
        );
        assert_eq!(
            batch_estimate,
            sample.group_frequency(sketch.config().group_by(), *group),
            "batched estimate diverged from sample handle for group {group:#x}"
        );
    }
}

#[test]
fn zero_key_survives_every_read_path() {
    // FlowKey(0, 0) packs to 0 and fingerprints to 0, so both screen
    // sums stay zero for a bucket holding only that key — the wide
    // screen must still report it via the signature total.
    let mut sketch = DistinctCountSketch::new(config(2, 32, 5));
    sketch.update(FlowUpdate::insert(SourceAddr(0), DestAddr(0)));

    assert_eq!(sketch.singletons(), sketch.singletons_reference());
    assert!(
        !sketch.singletons().is_empty(),
        "the all-zero key vanished from the wide singleton enumeration"
    );
    for level in 0..sketch.config().max_levels() {
        assert_eq!(
            sketch.level_occupancy(level),
            sketch.level_occupancy_reference(level)
        );
    }
    assert_eq!(sketch.estimate_group_frequency(0, 0.25), 1);
    assert_eq!(sketch.estimate_group_frequencies(&[0], 0.25), vec![1]);
}
