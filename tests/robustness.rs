//! Robustness integration tests: impaired packet feeds, timeout-based
//! discounting, epoch windows over phased timelines, and the ISP
//! topology end to end.

use ddos_streams::netsim::epoch::EpochManager;
use ddos_streams::netsim::impair::Impairment;
use ddos_streams::netsim::topology::IspTopology;
use ddos_streams::netsim::{HandshakeTracker, TrafficDriver};
use ddos_streams::streamgen::timeline::TimelineBuilder;
use ddos_streams::{DestAddr, SketchConfig, TrackingDcs};

fn config(seed: u64) -> SketchConfig {
    SketchConfig::builder()
        .buckets_per_table(512)
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn detection_survives_packet_loss() {
    // 10% loss: some attack SYNs are missed (undercount) and some
    // legitimate ACKs are missed (overcount of the crowd). The flood
    // must still rank first by a wide margin.
    let victim = DestAddr(0x0a00_0001);
    let crowd = DestAddr(0x0a00_0002);
    let mut driver = TrafficDriver::new(1);
    driver.syn_flood(victim, 3_000).flash_crowd(crowd, 3_000);
    let impaired = Impairment::new(1).loss(0.1).apply(&driver.into_segments());

    let mut tracker = HandshakeTracker::new(None);
    let mut sketch = TrackingDcs::new(config(1));
    for seg in &impaired {
        if let Some(u) = tracker.observe(seg) {
            sketch.update(u);
        }
    }
    let top = sketch.track_top_k(2, 0.25);
    assert_eq!(top.entries[0].group, victim.0);
    let flood_est = top.entries[0].estimated_frequency;
    let crowd_est = top.frequency_of(crowd.0).unwrap_or(0);
    // The flood lost ~10% of its SYNs; the crowd kept ~10% of its
    // flows half-open (lost ACKs). Still ≥ 4x separation.
    assert!(
        flood_est > crowd_est * 4,
        "flood {flood_est} vs crowd {crowd_est}"
    );
}

#[test]
fn detection_survives_duplication_and_reordering() {
    let victim = DestAddr(0x0a00_0003);
    let mut driver = TrafficDriver::new(2);
    driver
        .legitimate_sessions(DestAddr(0x0a00_0004), 800)
        .syn_flood(victim, 1_500);
    let impaired = Impairment::new(2)
        .duplication(0.3)
        .reordering(3)
        .apply(&driver.into_segments());

    let mut tracker = HandshakeTracker::new(None);
    let mut sketch = TrackingDcs::new(config(2));
    let mut net = 0i64;
    for seg in &impaired {
        if let Some(u) = tracker.observe(seg) {
            net += u.delta.signum();
            assert!(net >= 0, "stream became ill-formed");
            sketch.update(u);
        }
    }
    let top = sketch.track_top_k(1, 0.25);
    assert_eq!(top.entries[0].group, victim.0);
    // Duplicates must not inflate: estimate within 40% of 1500.
    let est = top.entries[0].estimated_frequency as f64;
    assert!(
        (est - 1_500.0).abs() / 1_500.0 < 0.4,
        "estimate {est} inflated by duplicates"
    );
}

#[test]
fn lost_acks_decay_via_half_open_timeout() {
    // With loss, completed flows whose ACK was dropped linger as
    // half-open; the router's timeout reclaims them, so the long-run
    // view converges back to the true attack set.
    let victim = DestAddr(0x0a00_0005);
    let mut driver = TrafficDriver::new(3);
    driver.flash_crowd(DestAddr(0x0a00_0006), 2_000);
    driver.advance_clock(1_000);
    driver.syn_flood(victim, 500);
    let impaired = Impairment::new(3).loss(0.15).apply(&driver.into_segments());

    let mut router = ddos_streams::EdgeRouter::new(0, Some(200));
    let mut sketch = TrackingDcs::new(config(3));
    for seg in &impaired {
        router.observe(seg);
        for u in router.drain_exports() {
            sketch.update(u);
        }
    }
    // At the end of the attack phase, the crowd's lost-ACK stragglers
    // (≈15% of 2000 = ~300) have been expired by the timeout (their
    // SYNs are ~1000 ticks old), so the attack dominates cleanly.
    let top = sketch.track_top_k(2, 0.25);
    assert_eq!(top.entries[0].group, victim.0);
    let crowd_residue = top.frequency_of(0x0a00_0006).unwrap_or(0);
    assert!(
        crowd_residue < top.entries[0].estimated_frequency / 2,
        "crowd residue {crowd_residue} not decayed"
    );
    // A final flush far in the future expires everything, and the
    // exported deletes drain the sketch back to empty.
    router.flush_expired(1_000_000);
    for u in router.drain_exports() {
        sketch.update(u);
    }
    assert_eq!(router.tracker().half_open_flows(), 0);
    assert!(sketch.track_top_k(1, 0.25).entries.is_empty());
}

#[test]
fn epoch_windows_catch_ramp_attacks_early() {
    // A slow ramp: absolute counts stay small for a while, but the
    // per-epoch delta is visible almost immediately.
    let victim = 0x0a00_0007u32;
    let timeline = TimelineBuilder::new(4)
        .steady_background(200, 30, 10, 0.95)
        .ramp_flood(victim, 300, 20)
        .build();
    let mut epochs = EpochManager::new(config(4), 8);
    let epoch_ticks = 50u64;
    let mut next_rotation = epoch_ticks;
    let mut first_window_hit = None;
    for t in timeline.updates() {
        while t.at >= next_rotation {
            let recent = epochs.recent_top_k(1, 1, 0.25).unwrap();
            if first_window_hit.is_none() && recent.frequency_of(victim).is_some_and(|f| f >= 100) {
                first_window_hit = Some(next_rotation);
            }
            epochs.rotate();
            next_rotation += epoch_ticks;
        }
        epochs.ingest(t.update);
    }
    let hit = first_window_hit.expect("ramp never crossed 100/epoch");
    // The ramp reaches 100 fresh sources/epoch well before its peak
    // (20/tick × 50 ticks = 1000/epoch at full rate).
    assert!(hit < 200 + 300, "window hit too late: tick {hit}");
}

#[test]
fn topology_plus_impairment_end_to_end() {
    // Four-prefix ISP, impaired feeds, central merge of per-router
    // sketches: the distributed victim still surfaces.
    let victim = DestAddr(0xc000_0042);
    let mut isp = IspTopology::new(2, Some(500));
    for round in 0..4u32 {
        let mut driver = TrafficDriver::new(u64::from(round) + 10)
            .with_source_base(0x3000_0000 + round * 0x0100_0000);
        driver
            .legitimate_sessions(DestAddr((round % 4) << 30 | 0x123), 300)
            .syn_flood(victim, 400);
        let impaired = Impairment::new(u64::from(round))
            .loss(0.05)
            .duplication(0.05)
            .apply(&driver.into_segments());
        isp.observe_all(&impaired);
    }
    let mut central = TrackingDcs::new(config(5));
    for (_, updates) in isp.drain_all() {
        for u in updates {
            central.update(u);
        }
    }
    let top = central.track_top_k(1, 0.25);
    assert_eq!(top.entries[0].group, victim.0);
    // ~1600 attack sources minus ~5% loss: estimate in a sane band.
    let est = top.entries[0].estimated_frequency as f64;
    assert!(
        (900.0..2_300.0).contains(&est),
        "estimate {est} out of band"
    );
}

#[test]
fn pulse_attack_invisible_to_coarse_syn_fin_counts() {
    // A low-rate pulse attack balances its SYNs with teardowns within
    // each period: per-period SYN−FIN counts look calm, while the
    // sketch's within-epoch view sees every burst (surge_detection
    // example shows the positive side; this pins the negative).
    let victim = 0x0a00_0008u32;
    let timeline = TimelineBuilder::new(6)
        .pulse_attack(victim, 8, 100, 5, 250)
        .build();
    let series = timeline.syn_fin_series(100);
    for (syns, fins) in &series {
        let diff = *syns as i64 - *fins as i64;
        assert!(
            diff.abs() <= 5,
            "period-aligned counts should balance, got {syns} vs {fins}"
        );
    }
    // Fine-grained truth: the burst is real.
    let peak = timeline
        .half_open_series(victim, 10)
        .into_iter()
        .max()
        .unwrap();
    assert!(peak >= 200, "peak = {peak}");
}
