//! End-to-end tests of the `dcsmon` command-line tool.

use std::process::Command;

fn dcsmon() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dcsmon"))
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("dcsmon-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn help_prints_usage() {
    let out = dcsmon().arg("help").output().expect("run dcsmon");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("generate"));
    assert!(text.contains("monitor"));
}

#[test]
fn no_arguments_prints_usage() {
    let out = dcsmon().output().expect("run dcsmon");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = dcsmon().arg("frobnicate").output().expect("run dcsmon");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn missing_input_fails_cleanly() {
    let out = dcsmon().args(["topk"]).output().expect("run dcsmon");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--input"));
}

#[test]
fn generate_topk_stats_pipeline() {
    let trace = temp_path("pipeline.dcs");
    let out = dcsmon()
        .args([
            "generate",
            "--output",
            trace.to_str().unwrap(),
            "--pairs",
            "20000",
            "--dests",
            "200",
            "--skew",
            "1.5",
            "--seed",
            "3",
        ])
        .output()
        .expect("generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("20000 updates"));

    let out = dcsmon()
        .args(["topk", "--input", trace.to_str().unwrap(), "--k", "3"])
        .output()
        .expect("topk");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("top-3"), "{text}");
    assert!(text.contains('±'), "error bars shown: {text}");

    let out = dcsmon()
        .args(["stats", "--input", trace.to_str().unwrap()])
        .output()
        .expect("stats");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("distinct pairs:     20000 (exact)"), "{text}");

    std::fs::remove_file(&trace).ok();
}

#[test]
fn attack_and_monitor_raise_alarm() {
    let trace = temp_path("attack.dcs");
    let out = dcsmon()
        .args([
            "attack",
            "--output",
            trace.to_str().unwrap(),
            "--victim",
            "10.0.0.9",
            "--sources",
            "1500",
            "--background",
            "2000",
            "--seed",
            "5",
        ])
        .output()
        .expect("attack");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("1500 half-open"));

    let out = dcsmon()
        .args([
            "monitor",
            "--input",
            trace.to_str().unwrap(),
            "--threshold",
            "700",
        ])
        .output()
        .expect("monitor");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ALARM"), "{text}");
    assert!(text.contains("10.0.0.9"), "{text}");

    std::fs::remove_file(&trace).ok();
}

#[test]
fn corrupt_trace_fails_cleanly() {
    let trace = temp_path("corrupt.dcs");
    std::fs::write(&trace, b"not a trace at all").unwrap();
    let out = dcsmon()
        .args(["topk", "--input", trace.to_str().unwrap()])
        .output()
        .expect("topk");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("magic"));
    std::fs::remove_file(&trace).ok();
}

#[test]
fn hierarchy_and_compare_commands() {
    let trace = temp_path("hier.dcs");
    let out = dcsmon()
        .args([
            "attack",
            "--output",
            trace.to_str().unwrap(),
            "--victim",
            "10.0.0.9",
            "--sources",
            "1000",
            "--background",
            "1000",
        ])
        .output()
        .expect("attack");
    assert!(out.status.success());

    let out = dcsmon()
        .args([
            "hierarchy",
            "--input",
            trace.to_str().unwrap(),
            "--threshold",
            "500",
        ])
        .output()
        .expect("hierarchy");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("host view:"), "{text}");
    assert!(text.contains("/24 view:"), "{text}");
    assert!(
        text.contains("finest granularity over 500: Host 10.0.0.9"),
        "{text}"
    );

    let out = dcsmon()
        .args(["compare", "--input", trace.to_str().unwrap(), "--k", "2"])
        .output()
        .expect("compare");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("exact (net half-open):"), "{text}");
    assert!(text.contains("insert-only"), "{text}");

    std::fs::remove_file(&trace).ok();
}

#[test]
fn timeline_and_replay_commands() {
    let trace = temp_path("timeline.dct");
    let out = dcsmon()
        .args([
            "timeline",
            "--output",
            trace.to_str().unwrap(),
            "--victim",
            "10.0.0.9",
            "--peak",
            "40",
        ])
        .output()
        .expect("timeline");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("timed updates"));

    let out = dcsmon()
        .args([
            "replay",
            "--input",
            trace.to_str().unwrap(),
            "--threshold",
            "400",
            "--every",
            "50",
        ])
        .output()
        .expect("replay");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("RAISED  10.0.0.9"), "{text}");
    assert!(text.contains("currently alarmed"), "{text}");

    // A plain trace is rejected by replay (wrong magic).
    let plain = temp_path("plain.dcs");
    let out = dcsmon()
        .args([
            "attack",
            "--output",
            plain.to_str().unwrap(),
            "--sources",
            "10",
            "--background",
            "10",
        ])
        .output()
        .expect("attack");
    assert!(out.status.success());
    let out = dcsmon()
        .args(["replay", "--input", plain.to_str().unwrap()])
        .output()
        .expect("replay plain");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("magic"));

    std::fs::remove_file(&trace).ok();
    std::fs::remove_file(&plain).ok();
}
