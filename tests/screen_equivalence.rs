//! The screened tracking hot path must be *bit-identical* to the
//! unscreened reference path on well-formed streams — every estimate,
//! not just statistically close. The singleton screen is only allowed
//! to skip decodes it can prove irrelevant.

use ddos_streams::{DestAddr, FlowUpdate, ScenarioBuilder, SketchConfig, SourceAddr, TrackingDcs};

fn config(seed: u64) -> SketchConfig {
    SketchConfig::builder()
        .buckets_per_table(256)
        .seed(seed)
        .build()
        .unwrap()
}

fn assert_equivalent(screened: &TrackingDcs, reference: &TrackingDcs) {
    for k in [1, 5, 10] {
        assert_eq!(
            screened.track_top_k(k, 0.25),
            reference.track_top_k(k, 0.25),
            "track_top_k diverged at k = {k}"
        );
    }
    assert_eq!(
        screened.estimate_distinct_pairs(0.25),
        reference.estimate_distinct_pairs(0.25)
    );
    assert_eq!(
        screened.sketch().estimate_top_k(10, 0.25),
        reference.sketch().estimate_top_k(10, 0.25)
    );
    screened.check_tracking_invariants().unwrap();
    reference.check_tracking_invariants().unwrap();
    assert_eq!(screened.untracked_decrements(), 0);
    assert_eq!(reference.untracked_decrements(), 0);
    assert_eq!(screened.heap_underflows(), 0);
    assert_eq!(reference.heap_underflows(), 0);
}

#[test]
fn screened_updates_match_reference_on_attack_scenario() {
    // Fixed-seed scenario with background churn (flows opening and
    // closing, i.e. deletions) plus a SYN flood.
    let scenario = ScenarioBuilder::new(17)
        .background(4_000, 60, 0.8)
        .syn_flood(0x0a00_0001, 600)
        .build();

    let mut screened = TrackingDcs::new(config(23));
    let mut reference = TrackingDcs::new(config(23));
    for u in scenario.updates() {
        screened.update(*u);
        reference.update_reference(*u);
    }
    assert_equivalent(&screened, &reference);
}

#[test]
fn screened_updates_match_reference_on_random_churn() {
    // Seeded random well-formed insert/delete stream: deletes only
    // remove currently-live packets, so no net count ever goes
    // negative. A third of the inserts repeat an already-live pair
    // (multi-packet flows), driving per-pair net counts above one —
    // the case the screen's own-singleton fast skip absorbs.
    use rand::prelude::*;

    for seed in [3u64, 29, 71] {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut screened = TrackingDcs::new(config(seed));
        let mut reference = TrackingDcs::new(config(seed));
        let mut live: Vec<(u32, u32)> = Vec::new();
        for _ in 0..6_000 {
            let update = if !live.is_empty() && rng.gen_bool(0.4) {
                let i = rng.gen_range(0..live.len());
                let (s, d) = live.swap_remove(i);
                FlowUpdate::delete(SourceAddr(s), DestAddr(d))
            } else {
                let (s, d) = if !live.is_empty() && rng.gen_bool(0.33) {
                    live[rng.gen_range(0..live.len())]
                } else {
                    (rng.gen(), rng.gen_range(0..12))
                };
                live.push((s, d));
                FlowUpdate::insert(SourceAddr(s), DestAddr(d))
            };
            screened.update(update);
            reference.update_reference(update);
        }
        assert_equivalent(&screened, &reference);
    }
}
