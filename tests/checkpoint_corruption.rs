//! The corruption matrix: every way a checkpoint file can be damaged
//! must surface as a typed `PersistError` — never a panic, and never a
//! partially-applied restore.
//!
//! Matrix axes:
//! * **Truncation** — the file cut at every section boundary, one byte
//!   before it, and one byte after it (simulating a torn write that
//!   the atomic-rename protocol should prevent but the decoder must
//!   still survive).
//! * **Bit flips** — seeded pseudo-random single-bit flips across the
//!   whole file; each must be caught by the magic check, the framing
//!   checks, a section CRC, or semantic validation.
//! * **Round-trip** — proptest-driven encode → decode identity over
//!   randomized sketch contents.

use proptest::prelude::*;

use ddos_streams::persist::{decode, encode, section_offsets, Checkpoint, PersistError};
use ddos_streams::{
    Delta, DestAddr, DistinctCountSketch, FlowUpdate, SketchConfig, SketchError, SourceAddr,
    TrackingDcs,
};

fn config(seed: u64) -> SketchConfig {
    // Deliberately small: the exhaustive truncation test decodes every
    // prefix of the document, which is quadratic in its length, so the
    // sample must stay in the tens-of-KB range to run in seconds.
    SketchConfig::builder()
        .num_tables(2)
        .buckets_per_table(8)
        .max_levels(5)
        .seed(seed)
        .build()
        .unwrap()
}

fn sample_bytes(seed: u64) -> Vec<u8> {
    let mut sketch = TrackingDcs::new(config(seed));
    for s in 0..600u32 {
        sketch.insert(SourceAddr(s), DestAddr(s % 11));
        if s % 4 == 0 {
            sketch.delete(SourceAddr(s), DestAddr(s % 11));
        }
    }
    encode(&Checkpoint::Tracking(sketch.to_state()))
}

/// A tiny deterministic PRNG (xorshift64*) so the bit-flip sample is
/// reproducible without pulling in rand for index generation.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

#[test]
fn truncation_at_every_section_boundary_is_typed() {
    let bytes = sample_bytes(1);
    let boundaries = section_offsets(&bytes).unwrap();
    assert_eq!(*boundaries.last().unwrap(), bytes.len());
    for &boundary in &boundaries {
        for cut in [boundary.saturating_sub(1), boundary, boundary + 1] {
            if cut >= bytes.len() {
                continue;
            }
            let err = decode(&bytes[..cut]).expect_err("truncated decode must fail");
            assert!(
                matches!(
                    err,
                    PersistError::Truncated { .. }
                        | PersistError::Corrupt { .. }
                        | PersistError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }
}

#[test]
fn truncation_at_every_single_byte_never_panics() {
    let bytes = sample_bytes(2);
    for cut in 0..bytes.len() {
        assert!(
            decode(&bytes[..cut]).is_err(),
            "decode of {cut}-byte prefix unexpectedly succeeded"
        );
    }
}

#[test]
fn seeded_random_bit_flips_are_all_detected() {
    let bytes = sample_bytes(3);
    let mut rng = XorShift(0x5eed_cafe);
    for _ in 0..500 {
        let bit = usize::try_from(rng.next()).unwrap_or(0) % (bytes.len() * 8);
        let (byte, shift) = (bit / 8, bit % 8);
        let mut flipped = bytes.clone();
        flipped[byte] ^= 1 << shift;
        assert!(
            decode(&flipped).is_err(),
            "single-bit flip at byte {byte} bit {shift} went undetected"
        );
    }
}

#[test]
fn every_bit_of_every_section_payload_is_crc_protected() {
    // Exhaustive over the payload regions (the framing regions are
    // covered structurally): flipping any payload bit must error.
    let bytes = sample_bytes(4);
    let boundaries = section_offsets(&bytes).unwrap();
    const FRAME: usize = 4 + 8 + 4; // tag + length + crc
    for window in boundaries.windows(2) {
        let payload_start = window[0] + FRAME;
        // Sample every 7th byte to keep runtime reasonable while still
        // touching every section.
        for byte in (payload_start..window[1]).step_by(7) {
            let mut flipped = bytes.clone();
            flipped[byte] ^= 0x01;
            assert!(
                decode(&flipped).is_err(),
                "payload flip at byte {byte} went undetected"
            );
        }
    }
}

#[test]
fn failed_decode_leaves_no_partially_applied_state() {
    // A restore is decode-then-construct: if decode fails, there is no
    // object at all; if construction fails, `from_state` returned Err
    // and no sketch was built. Simulate the second half: a decoded
    // state mutated into inconsistency must be rejected wholesale.
    let mut sketch = TrackingDcs::new(config(5));
    for s in 0..300u32 {
        sketch.insert(SourceAddr(s), DestAddr(s % 7));
    }
    let mut state = sketch.to_state();
    // Duplicate level indices violate the strictly-ascending invariant.
    if state.sketch.levels.len() >= 2 {
        state.sketch.levels[1].level = state.sketch.levels[0].level;
    }
    assert!(matches!(
        TrackingDcs::from_state(state),
        Err(SketchError::InvalidState { .. })
    ));
}

#[test]
fn empty_and_tiny_inputs_are_typed_errors() {
    assert!(matches!(decode(&[]), Err(PersistError::Truncated { .. })));
    assert!(matches!(
        decode(b"DCS"),
        Err(PersistError::Truncated { .. })
    ));
    assert!(matches!(
        decode(b"NOTACKPT________________"),
        Err(PersistError::BadMagic { .. })
    ));
}

/// Regression: a sharded checkpoint whose per-shard update counts
/// overflow `u64` when summed must be rejected as `Incompatible`.
/// Before the `checked_add` fix, the sum saturated to `u64::MAX`, so a
/// corrupt document pairing saturating counts with a `u64::MAX` cursor
/// slipped past the cursor-consistency check and restored silently.
#[test]
fn sharded_counts_overflowing_u64_are_incompatible() {
    use ddos_streams::netsim::ShardedIngest;
    use ddos_streams::persist::ShardedCheckpoint;

    let mut shard = DistinctCountSketch::new(config(7));
    shard.update(FlowUpdate::new(SourceAddr(1), DestAddr(2), Delta::Insert));
    let mut forged = shard.to_state();
    forged.updates_processed = u64::MAX;
    let checkpoint = ShardedCheckpoint {
        updates_distributed: u64::MAX,
        shards: vec![forged.clone(), forged],
    };
    match ShardedIngest::from_checkpoint(checkpoint) {
        Err(PersistError::Incompatible { reason }) => {
            assert!(reason.contains("overflow"), "wrong reason: {reason}");
        }
        other => panic!("overflowing counts must be Incompatible, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Encode → decode is the identity for arbitrary well-formed
    /// streams, for both document kinds that carry live sketch state.
    #[test]
    fn roundtrip_identity(seed in 0u64..1_000, n in 1usize..800) {
        let mut basic = DistinctCountSketch::new(config(seed));
        let mut tracking = TrackingDcs::new(config(seed));
        for i in 0..n {
            let s = u32::try_from(i).unwrap();
            let update = FlowUpdate::new(SourceAddr(s), DestAddr(s % 13), Delta::Insert);
            basic.update(update);
            tracking.update(update);
        }
        let b = Checkpoint::Sketch(basic.to_state());
        prop_assert_eq!(&decode(&encode(&b)).unwrap(), &b);
        let t = Checkpoint::Tracking(tracking.to_state());
        prop_assert_eq!(&decode(&encode(&t)).unwrap(), &t);
    }

    /// Random truncations of a valid file always produce a typed error.
    #[test]
    fn random_truncations_never_panic(seed in 0u64..50, frac in 0.0f64..1.0) {
        let bytes = sample_bytes(seed + 100);
        let cut = ((bytes.len() as f64) * frac) as usize;
        if cut < bytes.len() {
            prop_assert!(decode(&bytes[..cut]).is_err());
        }
    }
}
