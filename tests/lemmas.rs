//! Empirical verification of the paper's analytical claims.
//!
//! The full proofs live in an unavailable Bell Labs tech memo [14];
//! DESIGN.md substitutes these measurements of the lemmas' *conclusions*
//! on seeded randomized inputs:
//!
//! * Lemma 4.1 — with `r = Θ(log(n/δ))` tables and at most `s/2` pairs
//!   above a level, *every* pair above it is recovered w.h.p.
//! * Lemma 4.2 — the estimator's stopping level `b` satisfies
//!   `U/2^b ∈ [s/16, s/4]` w.h.p. (sample size lands in that band).
//! * Lemma 4.3 / Theorem 4.4 — frequency estimates concentrate:
//!   relative error scales like `1/√(sample count)`.
//! * The `E[u_b] = U/2^b` geometric-mass identity behind all of them.

use ddos_streams::{DestAddr, DistinctCountSketch, SketchConfig, SourceAddr, TrackingDcs};

fn config(s: usize, seed: u64) -> SketchConfig {
    SketchConfig::builder()
        .buckets_per_table(s)
        .seed(seed)
        .build()
        .unwrap()
}

/// Lemma 4.1: with the whole population at most `s/2`, *every* pair is
/// decodable as a singleton somewhere in the structure, w.h.p.
///
/// The tracking layer maintains exactly the per-level singleton sets,
/// so full recovery ⟺ Σ_b numSingletons(b) equals the population
/// (decode soundness on well-formed streams guarantees decoded pairs
/// are real, and levels partition the key space).
#[test]
fn lemma_4_1_full_recovery_below_half_load() {
    let s = 256;
    let population = (s / 2) as u32; // 128 pairs
                                     // The lemma prescribes r = Θ(log(n/δ)): at load ≤ s/2 a pair is a
                                     // singleton in each table w.p. ≥ 1/2, so r = ⌈log₂(n/δ)⌉ ≈ 12
                                     // union-bounds the miss probability below δ = 0.05. (At the
                                     // experimental default r = 3 about half the trials drop a pair —
                                     // the default trades this guarantee for speed, which is fine
                                     // because estimation only needs the sample to be *unbiased*.)
    let r = 12;
    let mut failures = 0u32;
    let trials = 40u64;
    for seed in 0..trials {
        let lemma_config = SketchConfig::builder()
            .num_tables(r)
            .buckets_per_table(s)
            .seed(seed)
            .build()
            .unwrap();
        let mut sketch = TrackingDcs::new(lemma_config);
        for i in 0..population {
            sketch.insert(SourceAddr(seed as u32 * 1_000 + i), DestAddr(i % 9));
        }
        let recovered: usize = (0..64).map(|b| sketch.num_singletons(b)).sum();
        if recovered != population as usize {
            failures += 1;
        }
    }
    // "With probability ≥ 1 − δ": allow a single unlucky trial.
    assert!(failures <= 1, "{failures}/{trials} trials missed pairs");
}

/// Lemma 4.2: the stopping sample size lands in `[s/16, s/4]` (when the
/// stream is large enough that the estimator does not bottom out).
#[test]
fn lemma_4_2_stopping_band() {
    let s = 256;
    let mut in_band = 0u32;
    let trials = 30u32;
    for seed in 0..trials {
        let mut sketch = DistinctCountSketch::new(config(s, u64::from(100 + seed)));
        // U = 20 000 ≫ s: the stopping level is interior.
        for i in 0..20_000u32 {
            sketch.insert(SourceAddr(i), DestAddr(i % 50));
        }
        let sample = sketch.distinct_sample(0.25);
        let size = sample.keys.len();
        // Band [s/16, s/4] = [16, 64], with the +1-level slack the
        // lemma's union bound carries (≤ 2× on each side).
        if (s / 16..=s / 2).contains(&size) {
            in_band += 1;
        }
    }
    assert!(
        in_band >= trials - 2,
        "only {in_band}/{trials} stopped in band"
    );
}

/// The geometric identity `E[u_b] = U/2^b`: measured sample size times
/// scale is an unbiased estimate of U.
#[test]
fn geometric_mass_identity() {
    let u = 30_000u32;
    let mut relative_errors = Vec::new();
    for seed in 0..20u64 {
        let mut sketch = DistinctCountSketch::new(config(512, 200 + seed));
        for i in 0..u {
            sketch.insert(SourceAddr(i), DestAddr(i % 100));
        }
        let est = sketch.estimate_distinct_pairs(0.25) as f64;
        relative_errors.push((est - f64::from(u)) / f64::from(u));
    }
    let mean: f64 = relative_errors.iter().sum::<f64>() / relative_errors.len() as f64;
    let spread = relative_errors
        .iter()
        .map(|e| (e - mean).abs())
        .fold(0.0f64, f64::max);
    // Unbiased: the mean error is far smaller than individual spreads.
    assert!(mean.abs() < 0.1, "mean relative error {mean:.3}");
    assert!(spread < 0.5, "max spread {spread:.3}");
}

/// Lemma 4.3 / Theorem 4.4: relative error of a heavy destination's
/// estimate shrinks like `1/√(sample count)` — quadrupling `s` halves
/// the error.
#[test]
fn lemma_4_3_error_scales_with_sample_size() {
    let heavy = DestAddr(0x0a00_0001);
    let measure = |s: usize| -> f64 {
        let mut total = 0.0;
        let trials = 15u64;
        for seed in 0..trials {
            let mut sketch = DistinctCountSketch::new(config(s, 300 + seed));
            // Heavy destination: 4000 of 12000 pairs.
            for i in 0..4_000u32 {
                sketch.insert(SourceAddr(i), heavy);
            }
            for i in 0..8_000u32 {
                sketch.insert(SourceAddr(100_000 + i), DestAddr(0x0b00_0000 + i % 200));
            }
            let est = sketch.estimate_group_frequency(heavy.0, 0.25) as f64;
            total += (est - 4_000.0).abs() / 4_000.0;
        }
        total / trials as f64
    };
    let coarse = measure(256);
    let fine = measure(4_096); // 16× the sample → expect ~4× less error
    assert!(
        fine < coarse / 2.0,
        "error did not shrink: s=256 → {coarse:.3}, s=4096 → {fine:.3}"
    );
    assert!(fine < 0.12, "fine-grained error too large: {fine:.3}");
}

/// Theorem 4.4, Clause 1: every reported destination has frequency
/// close to the k-th true frequency — no tiny destination sneaks into
/// the top-k when the sample is adequately sized.
#[test]
fn theorem_4_4_clause_1_no_small_impostors() {
    let k = 5usize;
    let mut violations = 0u32;
    let trials = 20u64;
    for seed in 0..trials {
        let mut sketch = DistinctCountSketch::new(config(4_096, 400 + seed));
        // Five heavy destinations at 1000 each, 200 light at 10 each.
        for d in 0..5u32 {
            for i in 0..1_000u32 {
                sketch.insert(SourceAddr(d * 10_000 + i), DestAddr(d));
            }
        }
        for d in 0..200u32 {
            for i in 0..10u32 {
                sketch.insert(SourceAddr(0x8000_0000 + d * 100 + i), DestAddr(1_000 + d));
            }
        }
        let top = sketch.estimate_top_k(k, 0.25);
        // f_vk = 1000; clause 1 allows f ≥ (1−ε)f_vk. A light
        // destination (f = 10 ≪ 750) in the answer is a violation.
        for entry in &top.entries {
            if entry.group >= 1_000 {
                violations += 1;
            }
        }
    }
    assert!(
        violations <= 1,
        "{violations} impostors across {trials} trials"
    );
}
