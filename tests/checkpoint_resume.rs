//! Kill-and-resume equivalence for the checkpoint layer.
//!
//! The recovery contract rides on sketch linearity: a sketch restored
//! from a checkpoint taken at stream position `p` and then fed updates
//! `p..n` must be **bit-identical** — same slabs, same heap slot order,
//! same top-k — to a sketch that processed all `n` updates without
//! interruption. These tests kill runs at deliberately awkward offsets
//! (mid-`update_batch` chunk, one update in, one update before the
//! end, across an epoch `rotate()`) and check exact state equality
//! after the restored run replays its suffix, going through real
//! checkpoint files on disk each time.

use std::path::PathBuf;

use ddos_streams::netsim::epoch::EpochManager;
use ddos_streams::netsim::sharded::ShardedIngest;
use ddos_streams::persist::{Checkpoint, CheckpointManager};
use ddos_streams::{
    Delta, DestAddr, DistinctCountSketch, FlowUpdate, SketchConfig, SourceAddr, TrackingDcs,
};

fn config(seed: u64) -> SketchConfig {
    SketchConfig::builder()
        .buckets_per_table(64)
        .seed(seed)
        .build()
        .unwrap()
}

/// A deterministic insert/delete stream: mostly inserts across a skewed
/// set of destinations, with every third source completing its
/// handshake (insert + later delete) so the delete path is exercised.
fn stream(n: u32) -> Vec<FlowUpdate> {
    let mut updates = Vec::new();
    for s in 0..n {
        let dest = DestAddr(s % 17);
        updates.push(FlowUpdate::new(SourceAddr(s), dest, Delta::Insert));
        if s % 3 == 0 && s >= 30 {
            let done = s - 30;
            updates.push(FlowUpdate::new(
                SourceAddr(done),
                DestAddr(done % 17),
                Delta::Delete,
            ));
        }
    }
    updates
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dcs-resume-{tag}-{}.ckpt", std::process::id()))
}

/// Round-trips a checkpoint through an actual file (encode → atomic
/// write → read → decode), so every equivalence test below also covers
/// the on-disk path, not just in-memory state capture.
fn through_disk(tag: &str, checkpoint: &Checkpoint) -> Checkpoint {
    let path = temp_path(tag);
    let mut manager = CheckpointManager::new(&path);
    manager.save(checkpoint).unwrap();
    let restored = manager.load().unwrap();
    let _ = std::fs::remove_file(&path);
    restored
}

/// Cut points chosen to land everywhere interesting relative to the
/// sketch's internal `BATCH_CHUNK = 1024` batching: first update, a
/// mid-chunk offset, an exact chunk boundary, one past it, and the
/// penultimate update.
fn cut_points(len: usize) -> Vec<usize> {
    vec![1, 500, 1024, 1025, len - 1]
}

#[test]
fn basic_sketch_restore_plus_replay_is_bit_identical() {
    let updates = stream(4_000);
    let mut full = DistinctCountSketch::new(config(1));
    full.update_batch(&updates);
    for cut in cut_points(updates.len()) {
        let mut prefix = DistinctCountSketch::new(config(1));
        prefix.update_batch(&updates[..cut]);
        let saved = through_disk("basic", &Checkpoint::Sketch(prefix.to_state()));
        drop(prefix); // the "crash"
        let Checkpoint::Sketch(state) = saved else {
            panic!("wrong document kind");
        };
        let mut resumed = DistinctCountSketch::from_state(state).unwrap();
        resumed.update_batch(&updates[cut..]);
        assert_eq!(
            resumed.to_state(),
            full.to_state(),
            "cut at {cut}: slabs diverged"
        );
    }
}

#[test]
fn tracking_restore_preserves_heap_order_and_top_k() {
    let updates = stream(4_000);
    let mut full = TrackingDcs::new(config(2));
    full.update_batch(&updates);
    for cut in cut_points(updates.len()) {
        let mut prefix = TrackingDcs::new(config(2));
        prefix.update_batch(&updates[..cut]);
        let saved = through_disk("tracking", &Checkpoint::Tracking(prefix.to_state()));
        drop(prefix);
        let Checkpoint::Tracking(state) = saved else {
            panic!("wrong document kind");
        };
        let mut resumed = TrackingDcs::from_state(state).unwrap();
        resumed.update_batch(&updates[cut..]);
        // Bit-identical state covers slabs, singleton multisets, *and*
        // the exact heap slot arrangement (tie-breaking depends on it).
        assert_eq!(
            resumed.to_state(),
            full.to_state(),
            "cut at {cut}: tracking state diverged"
        );
        assert_eq!(
            resumed.track_top_k(10, 0.25),
            full.track_top_k(10, 0.25),
            "cut at {cut}: top-k diverged"
        );
        resumed.check_tracking_invariants().unwrap();
    }
}

#[test]
fn restore_mid_stream_then_immediate_checkpoint_is_stable() {
    // Checkpoint → restore → checkpoint again with no updates in
    // between must produce byte-identical files (no state is lost or
    // invented by a round trip).
    let updates = stream(2_000);
    let mut sketch = TrackingDcs::new(config(3));
    sketch.update_batch(&updates[..1_234]);
    let first = ddos_streams::persist::encode(&Checkpoint::Tracking(sketch.to_state()));
    let Checkpoint::Tracking(state) = ddos_streams::persist::decode(&first).unwrap() else {
        panic!("wrong document kind");
    };
    let restored = TrackingDcs::from_state(state).unwrap();
    let second = ddos_streams::persist::encode(&Checkpoint::Tracking(restored.to_state()));
    assert_eq!(first, second);
}

#[test]
fn epoch_manager_survives_a_kill_across_rotations() {
    let updates = stream(6_000);
    // Uninterrupted: rotate every 1500 updates.
    let mut full = EpochManager::new(config(4), 3);
    for (i, u) in updates.iter().enumerate() {
        full.ingest(*u);
        if (i + 1) % 1_500 == 0 {
            full.rotate();
        }
    }
    // Kill at several points: mid-epoch, immediately after a rotate()
    // (the ring just changed), and immediately before one.
    for cut in [700usize, 3_000, 2_999, 4_501] {
        let mut prefix = EpochManager::new(config(4), 3);
        for (i, u) in updates[..cut].iter().enumerate() {
            prefix.ingest(*u);
            if (i + 1) % 1_500 == 0 {
                prefix.rotate();
            }
        }
        let saved = through_disk("epoch", &Checkpoint::Epoch(prefix.to_checkpoint()));
        drop(prefix);
        let Checkpoint::Epoch(checkpoint) = saved else {
            panic!("wrong document kind");
        };
        let mut resumed = EpochManager::from_checkpoint(checkpoint).unwrap();
        for (i, u) in updates[cut..].iter().enumerate() {
            resumed.ingest(*u);
            if (cut + i + 1) % 1_500 == 0 {
                resumed.rotate();
            }
        }
        assert_eq!(
            resumed.to_checkpoint(),
            full.to_checkpoint(),
            "cut at {cut}: epoch state diverged"
        );
        assert_eq!(
            resumed.recent_top_k(2, 5, 0.25).unwrap(),
            full.recent_top_k(2, 5, 0.25).unwrap(),
            "cut at {cut}: windowed query diverged"
        );
    }
}

#[test]
fn sharded_ingest_restores_every_shard_bit_identically() {
    let updates = stream(20_000);
    let mut full = ShardedIngest::new(config(5), 4);
    full.ingest(&updates);
    // 5000 is mid-chunk (chunk = 4096 updates), 8192 is a boundary.
    for cut in [5_000usize, 8_192, 1] {
        let mut prefix = ShardedIngest::new(config(5), 4);
        prefix.ingest(&updates[..cut]);
        let saved = through_disk("sharded", &Checkpoint::Sharded(prefix.checkpoint()));
        drop(prefix);
        let Checkpoint::Sharded(checkpoint) = saved else {
            panic!("wrong document kind");
        };
        let mut resumed = ShardedIngest::from_checkpoint(checkpoint).unwrap();
        resumed.ingest(&updates[cut..]);
        // Per-shard slab equality, not just merged-query equality.
        assert_eq!(
            resumed.checkpoint(),
            full.checkpoint(),
            "cut at {cut}: a shard diverged"
        );
        assert_eq!(
            resumed.merged().unwrap().track_top_k(5, 0.25),
            full.merged().unwrap().track_top_k(5, 0.25),
            "cut at {cut}: merged top-k diverged"
        );
    }
}

#[test]
fn per_shard_checkpoint_files_restore_independently() {
    // Deployment variant: each shard persists to its *own* file (as
    // independent workers would), and recovery reassembles the sharded
    // checkpoint from the per-shard documents plus the saved cursor.
    let updates = stream(12_000);
    let mut full = ShardedIngest::new(config(6), 3);
    full.ingest(&updates);

    let cut = 7_777usize; // mid-chunk
    let mut prefix = ShardedIngest::new(config(6), 3);
    prefix.ingest(&updates[..cut]);
    let checkpoint = prefix.checkpoint();
    let cursor = checkpoint.updates_distributed;
    let mut paths = Vec::new();
    for (i, shard_state) in checkpoint.shards.iter().enumerate() {
        let path = temp_path(&format!("per-shard-{i}"));
        let mut manager = CheckpointManager::new(&path);
        manager
            .save(&Checkpoint::Sketch(shard_state.clone()))
            .unwrap();
        paths.push(path);
    }
    drop(prefix);
    drop(checkpoint);

    // Recovery: read the shard files back in shard order.
    let mut shards = Vec::new();
    for path in &paths {
        let Checkpoint::Sketch(state) = CheckpointManager::new(path).load().unwrap() else {
            panic!("wrong document kind");
        };
        shards.push(state);
    }
    for path in &paths {
        let _ = std::fs::remove_file(path);
    }
    let reassembled = ddos_streams::persist::ShardedCheckpoint {
        updates_distributed: cursor,
        shards,
    };
    let mut resumed = ShardedIngest::from_checkpoint(reassembled).unwrap();
    resumed.ingest(&updates[cut..]);
    assert_eq!(resumed.checkpoint(), full.checkpoint());
}
