//! Distribution plumbing: sketch merging across sites and trace
//! serialization round-trips.

use ddos_streams::streamgen::{decode_trace, encode_trace};
use ddos_streams::{DistinctCountSketch, ScenarioBuilder, SketchConfig, SketchError, TrackingDcs};

fn config(seed: u64) -> SketchConfig {
    SketchConfig::builder()
        .buckets_per_table(256)
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn merged_sketches_equal_union_stream() {
    let parts: Vec<_> = (0..4u64)
        .map(|i| {
            ScenarioBuilder::new(i)
                .source_base(0x6000_0000 + i as u32 * 0x0100_0000)
                .background(2_000, 50, 0.85)
                .syn_flood(0x0a00_0001, 500)
                .build()
        })
        .collect();

    let mut union = TrackingDcs::new(config(9));
    let mut merged = TrackingDcs::new(config(9));
    let mut first = true;
    for part in &parts {
        let mut local = TrackingDcs::new(config(9));
        for u in part.updates() {
            local.update(*u);
            union.update(*u);
        }
        if first {
            merged = local;
            first = false;
        } else {
            merged.merge_from(&local).unwrap();
        }
    }
    assert_eq!(merged.track_top_k(10, 0.25), union.track_top_k(10, 0.25));
    assert_eq!(
        merged.estimate_distinct_pairs(0.25),
        union.estimate_distinct_pairs(0.25)
    );
    merged.check_tracking_invariants().unwrap();
}

#[test]
fn merge_is_order_independent() {
    let a_stream = ScenarioBuilder::new(1).syn_flood(1, 300).build();
    let b_stream = ScenarioBuilder::new(2)
        .source_base(0x7000_0000)
        .syn_flood(2, 300)
        .build();
    let build = |updates: &[ddos_streams::FlowUpdate]| {
        let mut s = DistinctCountSketch::new(config(4));
        for u in updates {
            s.update(*u);
        }
        s
    };
    let mut ab = build(a_stream.updates());
    ab.merge_from(&build(b_stream.updates())).unwrap();
    let mut ba = build(b_stream.updates());
    ba.merge_from(&build(a_stream.updates())).unwrap();
    assert_eq!(ab.estimate_top_k(5, 0.25), ba.estimate_top_k(5, 0.25));
}

#[test]
fn merge_refuses_mismatched_configs() {
    let mut a = DistinctCountSketch::new(config(1));
    let b = DistinctCountSketch::new(config(2));
    assert!(matches!(
        a.merge_from(&b),
        Err(SketchError::IncompatibleMerge { .. })
    ));
    let c = DistinctCountSketch::new(
        SketchConfig::builder()
            .buckets_per_table(512)
            .seed(1)
            .build()
            .unwrap(),
    );
    assert!(a.merge_from(&c).is_err());
}

#[test]
fn trace_roundtrip_preserves_sketch_state() {
    let scenario = ScenarioBuilder::new(5)
        .background(3_000, 40, 0.9)
        .syn_flood(0x0a00_0005, 700)
        .build();

    let encoded = encode_trace(scenario.updates());
    let decoded = decode_trace(&encoded).unwrap();
    assert_eq!(decoded, scenario.updates());

    let mut original = TrackingDcs::new(config(5));
    let mut replayed = TrackingDcs::new(config(5));
    for u in scenario.updates() {
        original.update(*u);
    }
    for u in &decoded {
        replayed.update(*u);
    }
    assert_eq!(
        original.track_top_k(10, 0.25),
        replayed.track_top_k(10, 0.25)
    );
}

#[test]
fn trace_file_roundtrip() {
    let scenario = ScenarioBuilder::new(6).syn_flood(9, 100).build();
    let encoded = encode_trace(scenario.updates());
    let dir = std::env::temp_dir().join("dcs-trace-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stream.dcs");
    std::fs::write(&path, &encoded).unwrap();
    let read_back = std::fs::read(&path).unwrap();
    assert_eq!(decode_trace(&read_back).unwrap(), scenario.updates());
    std::fs::remove_file(&path).ok();
}

// Requires the real serde/serde_json crates; the vendored offline
// placeholders cannot serialize (see vendor/serde/src/lib.rs).
#[cfg(feature = "serde")]
#[test]
fn sketch_json_roundtrip_preserves_answers() {
    let mut sketch = DistinctCountSketch::new(config(7));
    let scenario = ScenarioBuilder::new(7).syn_flood(3, 400).build();
    for u in scenario.updates() {
        sketch.update(*u);
    }
    let json = serde_json::to_string(&sketch).unwrap();
    let back: DistinctCountSketch = serde_json::from_str(&json).unwrap();
    assert_eq!(sketch.estimate_top_k(5, 0.25), back.estimate_top_k(5, 0.25));
}
