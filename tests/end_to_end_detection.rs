//! End-to-end detection tests: packets → handshake tracking → sketch →
//! monitor alarms, across crates.

use ddos_streams::netsim::{run_pipeline, PipelineConfig, TrafficDriver};
use ddos_streams::{
    AlarmPolicy, DdosMonitor, DestAddr, ScenarioBuilder, SketchConfig, TrackingDcs,
};

fn sketch_config(seed: u64) -> SketchConfig {
    SketchConfig::builder()
        .buckets_per_table(512)
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn scenario_flood_dominates_tracked_top_k() {
    let victim = 0x0a00_0001u32;
    let scenario = ScenarioBuilder::new(1)
        .background(3_000, 100, 0.9)
        .syn_flood(victim, 2_000)
        .flash_crowd(0x0a00_0002, 2_500, 0.97)
        .build();
    let mut sketch = TrackingDcs::new(sketch_config(1));
    for u in scenario.updates() {
        sketch.update(*u);
    }
    let top = sketch.track_top_k(1, 0.25);
    assert_eq!(top.entries[0].group, victim);
    // Estimate within 40% of exact half-open truth.
    let truth = scenario.half_open(victim) as f64;
    let got = top.entries[0].estimated_frequency as f64;
    assert!(
        (got - truth).abs() / truth < 0.4,
        "estimate {got} vs truth {truth}"
    );
}

#[test]
fn monitor_alarms_on_flood_but_not_crowd() {
    let victim = 0x0a00_0003u32;
    let crowd = 0x0a00_0004u32;
    let scenario = ScenarioBuilder::new(2)
        .syn_flood(victim, 1_500)
        .flash_crowd(crowd, 3_000, 0.98)
        .build();
    let mut monitor = DdosMonitor::new(
        sketch_config(2),
        AlarmPolicy {
            absolute_threshold: 600,
            ..AlarmPolicy::default()
        },
    );
    monitor.ingest(scenario.updates().iter().copied());
    let alarms = monitor.evaluate();
    assert!(alarms.iter().any(|a| a.dest == victim), "flood missed");
    assert!(
        !alarms.iter().any(|a| a.dest == crowd),
        "flash crowd falsely flagged"
    );
}

#[test]
fn pipeline_detects_distributed_attack_single_routers_do_not() {
    let victim = DestAddr(0x0a00_0007);
    let per_router = 400u32;
    let threshold = 900u64; // above any single router's slice
    let feeds: Vec<_> = (0..4u32)
        .map(|i| {
            let mut d =
                TrafficDriver::new(u64::from(i)).with_source_base(0x2000_0000 + i * 0x0200_0000);
            d.legitimate_sessions(DestAddr(0x0a00_0008), 200)
                .syn_flood(victim, per_router);
            d.into_segments()
        })
        .collect();
    let config = PipelineConfig {
        sketch: SketchConfig::builder()
            .buckets_per_table(1024)
            .seed(3)
            .build()
            .unwrap(),
        policy: AlarmPolicy {
            absolute_threshold: threshold,
            ..AlarmPolicy::default()
        },
        batch_size: 128,
        evaluate_every: 1_000,
        half_open_timeout: None,
        telemetry: None,
        checkpoint: None,
        ingest_shards: None,
    };
    let report = run_pipeline(feeds, config);
    assert!(report.alarmed_destinations().contains(&victim.0));
    // Sanity: one router's slice alone is under the threshold.
    assert!(u64::from(per_router) < threshold);
}

#[test]
fn attack_that_subsides_stops_dominating() {
    // Flood, then completion of all attack handshakes (e.g., a SYN
    // proxy validating clients): the victim drops out of the top-k.
    let victim = 0x0a00_000au32;
    let steady = 0x0a00_000bu32;
    let mut sketch = TrackingDcs::new(sketch_config(4));
    // Steady background: 300 half-open at another destination.
    for s in 0..300u32 {
        sketch.insert(ddos_streams::SourceAddr(0x7000_0000 + s), DestAddr(steady));
    }
    // Flood arrives…
    for s in 0..2_000u32 {
        sketch.insert(ddos_streams::SourceAddr(s), DestAddr(victim));
    }
    assert_eq!(sketch.track_top_k(1, 0.25).entries[0].group, victim);
    // …and is fully discounted.
    for s in 0..2_000u32 {
        sketch.delete(ddos_streams::SourceAddr(s), DestAddr(victim));
    }
    let top = sketch.track_top_k(1, 0.25);
    assert_eq!(top.entries[0].group, steady);
}

#[test]
fn timeout_based_discounting_keeps_long_streams_bounded() {
    // With a half-open timeout at the router, stale attack state decays:
    // the tracker's live-flow table stays bounded by attack rate ×
    // timeout, not by total attack volume.
    let victim = DestAddr(0x0a00_000c);
    let mut router = ddos_streams::EdgeRouter::new(1, Some(50));
    for wave in 0..20u32 {
        for s in 0..100u32 {
            let src = ddos_streams::SourceAddr(wave * 1_000 + s);
            router.observe(&ddos_streams::TcpSegment::syn(
                src,
                victim,
                u64::from(wave) * 100,
            ));
        }
    }
    // Live flows bounded well below the 2000 total observed.
    assert!(router.tracker().live_flows() <= 300);
    let updates = router.drain_exports();
    let net: i64 = updates.iter().map(|u| u.delta.signum()).sum();
    assert_eq!(net as usize, router.tracker().half_open_flows());
}
