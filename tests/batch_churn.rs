//! Churn soak for the arena-backed batched update path.
//!
//! The flat-arena refactor and `update_batch` promise *bit-identical*
//! state to the pre-arena per-update reference path — same singleton
//! decodes, same top-k (including heap tie-breaking, which depends on
//! `adjust()` call order), same `heap_bytes`. These properties drive
//! random insert/delete churn through both paths and compare exactly.

use proptest::prelude::*;
use std::collections::HashMap;

use ddos_streams::{
    Delta, DestAddr, DistinctCountSketch, FlowUpdate, SketchConfig, SourceAddr, TrackingDcs,
};

fn config(seed: u64) -> SketchConfig {
    SketchConfig::builder()
        .buckets_per_table(64)
        .seed(seed)
        .build()
        .unwrap()
}

/// Turns a raw op list into a well-formed stream: a delete is only
/// emitted for a pair currently present, so per-pair net counts stay in
/// `{0, 1, …}` (the paper's §3 stream model).
fn well_formed(ops: Vec<(u32, u32, bool)>) -> Vec<FlowUpdate> {
    let mut net: HashMap<(u32, u32), i64> = HashMap::new();
    ops.into_iter()
        .map(|(s, d, del)| {
            let entry = net.entry((s, d)).or_insert(0);
            if del && *entry > 0 {
                *entry -= 1;
                FlowUpdate::new(SourceAddr(s), DestAddr(d), Delta::Delete)
            } else {
                *entry += 1;
                FlowUpdate::new(SourceAddr(s), DestAddr(d), Delta::Insert)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `update_batch` (arena + screening + prefetch) leaves a tracking
    /// sketch in exactly the state the unscreened per-update reference
    /// path produces, under heavy insert/delete churn and uneven batch
    /// splits.
    #[test]
    fn batched_churn_matches_reference_exactly(
        seed in 0u64..100,
        ops in proptest::collection::vec((0u32..300, 0u32..12, any::<bool>()), 1..400),
        splits in proptest::collection::vec(1usize..97, 1..8),
    ) {
        let updates = well_formed(ops);
        let mut batched = TrackingDcs::new(config(seed));
        let mut reference = TrackingDcs::new(config(seed));
        for u in &updates {
            reference.update_reference(*u);
        }
        // Feed the batched sketch in uneven chunks so chunk boundaries
        // land at arbitrary offsets, cycling through the split sizes.
        let mut offset = 0;
        let mut split_idx = 0;
        while offset < updates.len() {
            let take = splits[split_idx % splits.len()].min(updates.len() - offset);
            batched.update_batch(&updates[offset..offset + take]);
            offset += take;
            split_idx += 1;
        }

        prop_assert_eq!(batched.sketch().singletons(), reference.sketch().singletons());
        prop_assert_eq!(
            batched.sketch().estimate_top_k(10, 0.25),
            reference.sketch().estimate_top_k(10, 0.25)
        );
        prop_assert_eq!(
            batched.track_top_k(10, 0.25),
            reference.track_top_k(10, 0.25)
        );
        prop_assert_eq!(batched.heap_bytes(), reference.heap_bytes());
        prop_assert_eq!(batched.updates_processed(), reference.updates_processed());

        // The screen must never have clamped or missed: all tracking
        // side counters stay zero and invariants hold on both sides.
        prop_assert_eq!(batched.untracked_decrements(), 0);
        prop_assert_eq!(batched.heap_underflows(), 0);
        prop_assert_eq!(batched.heap_overflows(), 0);
        batched.check_tracking_invariants().map_err(TestCaseError::fail)?;
        reference.check_tracking_invariants().map_err(TestCaseError::fail)?;
    }

    /// The basic sketch's `update_batch` equals its per-update path on
    /// every observable: decoded singletons, the distinct sample, top-k,
    /// allocated levels, and allocation footprint.
    #[test]
    fn basic_batch_equals_sequential_slabs(
        seed in 0u64..100,
        ops in proptest::collection::vec((0u32..500, 0u32..8, any::<bool>()), 1..300),
    ) {
        let updates = well_formed(ops);
        let mut batched = DistinctCountSketch::new(config(seed));
        let mut sequential = DistinctCountSketch::new(config(seed));
        for u in &updates {
            sequential.update(*u);
        }
        batched.update_batch(&updates);
        prop_assert_eq!(batched.singletons(), sequential.singletons());
        prop_assert_eq!(batched.distinct_sample(0.25), sequential.distinct_sample(0.25));
        prop_assert_eq!(
            batched.estimate_top_k(10, 0.25),
            sequential.estimate_top_k(10, 0.25)
        );
        prop_assert_eq!(batched.allocated_levels(), sequential.allocated_levels());
        prop_assert_eq!(batched.heap_bytes(), sequential.heap_bytes());
        prop_assert_eq!(batched.net_updates(), sequential.net_updates());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Bit-identity of `update_batch` against the per-update loop at
    /// every dispatch and chunking boundary: both sides of
    /// `BATCH_MIN_ROUTED` (where the batch entry point switches between
    /// the scalar loop and the routed plan) and of `BATCH_CHUNK` (where
    /// the routed plan splits into a second chunk), plus the empty and
    /// single-update batches, across `r ∈ {2, 3, 4}` and mixed
    /// insert/delete streams. `to_state` compares the full serialized
    /// sketch — every counter of every arena — so equality here is
    /// bit-identity, not observable-level agreement.
    #[test]
    fn batch_boundary_sizes_bit_identical(
        seed in 0u64..50,
        r in 2usize..5,
        raw in proptest::collection::vec(
            (any::<u32>(), 0u32..16, any::<bool>()),
            ddos_streams::core::BATCH_CHUNK + 1,
        ),
    ) {
        use ddos_streams::core::{BATCH_CHUNK, BATCH_MIN_ROUTED};
        let updates = well_formed(raw);
        let sizes = [
            0,
            1,
            BATCH_MIN_ROUTED - 1,
            BATCH_MIN_ROUTED,
            BATCH_MIN_ROUTED + 1,
            BATCH_CHUNK - 1,
            BATCH_CHUNK,
            BATCH_CHUNK + 1,
        ];
        for n in sizes {
            let slice = &updates[..n];
            let cfg = SketchConfig::builder()
                .num_tables(r)
                .buckets_per_table(64)
                .seed(seed)
                .build()
                .unwrap();
            let mut batched = DistinctCountSketch::new(cfg.clone());
            let mut sequential = DistinctCountSketch::new(cfg);
            batched.update_batch(slice);
            for u in slice {
                sequential.update(*u);
            }
            prop_assert_eq!(batched.to_state(), sequential.to_state(), "batch size {}", n);
        }
    }
}
